//! Query normalization (paper §4.2 and §5.3).
//!
//! Raw nanopore currents vary from pore to pore because of slight differences
//! in applied bias voltage, so every read must be rescaled before it can be
//! compared against the reference squiggle. The accelerator's normalizer:
//!
//! 1. accumulates the first `n = 2000` samples and computes their mean and
//!    Mean Absolute Deviation (MAD),
//! 2. transforms each sample with mean–MAD normalization,
//! 3. **re-estimates** mean and MAD over the trailing window every 2000
//!    samples as the read streams on (pore baselines drift mid-read),
//! 4. clips outliers, and
//! 5. rescales to a signed 8-bit fixed-point value in `[-4, 4]`.
//!
//! This module is the bit-exact software counterpart of that pipeline; the
//! hardware model in `sf-hw` reuses it to verify its own datapath. The
//! rolling re-estimation state machine is [`CalibratingFeed`]; both the batch
//! entry points ([`Normalizer::normalize_raw`] and friends) and the
//! streaming classifier sessions in `sf-sdtw` are built on it, which is what
//! keeps chunked streaming bit-identical to one-shot classification (see
//! `docs/streaming.md` in the repository root).

use crate::signal::stats;
use crate::telemetry::metrics;
use sf_telemetry::Stopwatch;
use std::collections::VecDeque;

/// The fixed-point range used by the 8-bit quantizer: normalized values are
/// clipped to `[-FIXED_POINT_RANGE, FIXED_POINT_RANGE]`.
pub const FIXED_POINT_RANGE: f32 = 4.0;

/// Statistic used as the denominator of the normalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum ScaleEstimator {
    /// Mean absolute deviation — cheap to compute in hardware (no square
    /// root); the estimator used by the accelerator.
    #[default]
    MeanAbsoluteDeviation,
    /// Standard deviation — the conventional z-score denominator, used by the
    /// floating-point software baseline.
    StandardDeviation,
}

/// Configuration of the normalization pipeline.
///
/// # Examples
///
/// A latency-oriented rolling configuration: calibrate on the first 500
/// samples, then re-estimate over the trailing 500 samples every 250 samples
/// so the parameters track pore-baseline drift mid-read:
///
/// ```
/// use sf_squiggle::normalize::{Normalizer, NormalizerConfig};
///
/// let config = NormalizerConfig::default()
///     .with_calibration_window(500)
///     .with_recalibration_interval(250);
/// let normalizer = Normalizer::new(config);
///
/// // A signal whose baseline drifts upward by 200 ADC counts over the read:
/// let raw: Vec<u16> = (0..2_000)
///     .map(|i| 450 + (i / 10) as u16 + ((i * 13) % 40) as u16)
///     .collect();
/// let rolling = normalizer.normalize_raw(&raw);
/// // Rolling re-estimation keeps the tail of the read near the baseline…
/// let tail_mean: f32 = rolling[1_500..].iter().sum::<f32>() / 500.0;
/// assert!(tail_mean < 3.0, "tail mean {tail_mean}");
/// // …whereas freezing the first 500-sample estimate lets the drift
/// // accumulate until the tail saturates against the outlier clip.
/// let frozen = Normalizer::new(config.with_recalibration_interval(0)).normalize_raw(&raw);
/// let frozen_tail: f32 = frozen[1_500..].iter().sum::<f32>() / 500.0;
/// assert!(frozen_tail > 3.5, "frozen tail {frozen_tail}");
/// assert!(tail_mean + 1.0 < frozen_tail);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NormalizerConfig {
    /// Denominator statistic.
    pub scale: ScaleEstimator,
    /// Number of samples mean and scale are estimated over: the first
    /// `calibration_window` samples for the initial estimate, and the
    /// trailing `calibration_window` samples for every re-estimation (when
    /// [`NormalizerConfig::recalibration_interval`] is non-zero).
    pub calibration_window: usize,
    /// Values whose absolute normalized magnitude exceeds this are clamped
    /// (outlier filtering).
    pub outlier_clip: f32,
    /// Interval, in samples, at which normalization parameters are
    /// re-estimated over the trailing [`NormalizerConfig::calibration_window`]
    /// samples once the initial window has filled. The hardware re-estimates
    /// every 2000 samples (the default); `0` freezes the parameters after the
    /// initial calibration window. Set this below a filter's
    /// `prefix_samples` (together with a short window) when streaming
    /// ejection latency matters: decisions can then fire as soon as the
    /// short window fills, and the rolling re-estimation recovers the
    /// accuracy a short frozen window would lose.
    pub recalibration_interval: usize,
}

impl Default for NormalizerConfig {
    fn default() -> Self {
        NormalizerConfig {
            scale: ScaleEstimator::MeanAbsoluteDeviation,
            calibration_window: 2000,
            outlier_clip: FIXED_POINT_RANGE,
            recalibration_interval: 2000,
        }
    }
}

impl NormalizerConfig {
    /// Sets the calibration window.
    #[must_use]
    pub fn with_calibration_window(mut self, calibration_window: usize) -> Self {
        self.calibration_window = calibration_window;
        self
    }

    /// Sets the recalibration interval (`0` freezes parameters after the
    /// initial window).
    #[must_use]
    pub fn with_recalibration_interval(mut self, recalibration_interval: usize) -> Self {
        self.recalibration_interval = recalibration_interval;
        self
    }
}

/// Normalization parameters estimated from a calibration window.
///
/// Under rolling re-estimation
/// ([`NormalizerConfig::recalibration_interval`] > 0) the active parameters
/// are replaced mid-stream: every sample is transformed with the parameters
/// estimated at the most recent (re)calibration point before it, so the
/// transform is causal — it never depends on samples that have not arrived
/// yet — and batch and streaming paths agree bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NormalizationParams {
    /// Estimated signal mean.
    pub shift: f32,
    /// Estimated signal scale (MAD or standard deviation).
    pub scale: f32,
}

impl NormalizationParams {
    /// Applies the shift → scale → clip transform to one sample. This is
    /// *the* per-sample normalization formula: batch normalization
    /// ([`Normalizer::normalize_with`]) and the incremental streaming
    /// classifier sessions in `sf-sdtw` both go through it, which is what
    /// keeps chunked streaming bit-identical to the one-shot path.
    #[inline]
    pub fn apply(self, sample: f32, clip: f32) -> f32 {
        ((sample - self.shift) / self.scale).clamp(-clip, clip)
    }

    /// How far `newer` has moved from `self`, in units of `self`'s scale:
    /// `|Δshift| / scale + |Δscale| / scale`. Useful for instrumentation
    /// (how much did the pore baseline drift between recalibrations?) and
    /// for tests that assert a drift was actually tracked.
    pub fn drift(self, newer: NormalizationParams) -> f32 {
        ((newer.shift - self.shift).abs() + (newer.scale - self.scale).abs())
            / self.scale.max(f32::EPSILON)
    }
}

/// The query normalizer.
///
/// # Examples
///
/// ```
/// use sf_squiggle::normalize::{Normalizer, NormalizerConfig};
///
/// let raw: Vec<u16> = (0..2000).map(|i| 480 + (i % 40) as u16).collect();
/// let normalizer = Normalizer::new(NormalizerConfig::default());
/// let normalized = normalizer.normalize_raw(&raw);
/// assert_eq!(normalized.len(), raw.len());
/// // Normalized output is centred on zero.
/// let mean: f32 = normalized.iter().sum::<f32>() / normalized.len() as f32;
/// assert!(mean.abs() < 0.05);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Normalizer {
    config: NormalizerConfig,
}

impl Normalizer {
    /// Creates a normalizer with the given configuration.
    pub fn new(config: NormalizerConfig) -> Self {
        Normalizer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &NormalizerConfig {
        &self.config
    }

    /// Estimates normalization parameters from the first
    /// `calibration_window` samples of `signal`.
    pub fn estimate<T: Into<f64> + Copy>(&self, signal: &[T]) -> NormalizationParams {
        let window = &signal[..signal.len().min(self.config.calibration_window)];
        let s = stats(window);
        let scale = match self.config.scale {
            ScaleEstimator::MeanAbsoluteDeviation => s.mad,
            ScaleEstimator::StandardDeviation => s.std_dev,
        };
        NormalizationParams {
            shift: s.mean as f32,
            scale: (scale as f32).max(f32::EPSILON),
        }
    }

    /// Normalizes a whole signal through the rolling state machine — the
    /// batch counterpart of a streaming [`CalibratingFeed`], guaranteed
    /// sample-for-sample identical to feeding the same signal chunk by chunk.
    fn normalize_rolling<T: Into<f64> + Copy>(&self, signal: &[T]) -> Vec<f32> {
        let mut out = Vec::with_capacity(signal.len());
        let mut feed = CalibratingFeed::new(self.config, signal.len());
        let mut sink = |z: f32| {
            out.push(z);
            false
        };
        feed.push(signal, &mut sink);
        feed.flush(&mut sink);
        out
    }

    /// Normalizes a floating-point signal with parameters estimated from its
    /// own calibration window (and re-estimated every
    /// [`NormalizerConfig::recalibration_interval`] samples), clipping
    /// outliers.
    pub fn normalize(&self, signal: &[f32]) -> Vec<f32> {
        self.normalize_rolling(signal)
    }

    /// Normalizes a raw integer signal (ADC counts).
    pub fn normalize_raw(&self, signal: &[u16]) -> Vec<f32> {
        self.normalize_rolling(signal)
    }

    /// Normalizes any sample stream with explicit, pre-estimated parameters.
    /// The parameters are applied as-is to every sample — no rolling
    /// re-estimation happens on this path.
    pub fn normalize_with<I>(&self, samples: I, params: NormalizationParams) -> Vec<f32>
    where
        I: IntoIterator<Item = f64>,
    {
        let clip = self.config.outlier_clip;
        samples
            .into_iter()
            .map(|x| params.apply(x as f32, clip))
            .collect()
    }

    /// Normalizes and quantizes to the accelerator's signed 8-bit domain.
    pub fn normalize_raw_quantized(&self, signal: &[u16]) -> Vec<i8> {
        self.normalize_raw(signal)
            .iter()
            .copied()
            .map(quantize)
            .collect()
    }

    /// Normalizes a floating-point signal and quantizes it.
    pub fn normalize_quantized(&self, signal: &[f32]) -> Vec<i8> {
        self.normalize(signal)
            .iter()
            .copied()
            .map(quantize)
            .collect()
    }
}

/// Quantizes a normalized value into the signed 8-bit fixed-point domain
/// (`[-4, 4]` mapped onto `[-127, 127]`).
pub fn quantize(value: f32) -> i8 {
    let clamped = value.clamp(-FIXED_POINT_RANGE, FIXED_POINT_RANGE);
    (clamped / FIXED_POINT_RANGE * 127.0).round() as i8
}

/// Inverse of [`quantize`], recovering an approximate normalized value.
pub fn dequantize(value: i8) -> f32 {
    value as f32 / 127.0 * FIXED_POINT_RANGE
}

/// The rolling normalization state machine shared by every consumer of the
/// normalizer: buffers raw samples until the calibration window fills,
/// estimates [`NormalizationParams`], and from then on drains every sample
/// through a per-sample sink — re-estimating the parameters over the
/// trailing window every [`NormalizerConfig::recalibration_interval`]
/// samples, exactly as the accelerator's streaming normalizer does.
///
/// Both the batch entry points ([`Normalizer::normalize_raw`] and friends)
/// and the incremental classifier sessions in `sf-sdtw` are built on this
/// one state machine, which is what keeps chunked streaming bit-identical
/// to one-shot classification no matter where the chunk boundaries fall or
/// how often the parameters are re-derived. The sink returns `true` to stop
/// the feed early (a streaming session uses this when a decision becomes
/// final).
///
/// Re-estimation is *causal*: the parameters applied to sample `i` are
/// always derived from samples that arrived strictly before `i`. The k-th
/// recalibration happens at sample count `calibration_window +
/// k * recalibration_interval` and estimates over the trailing
/// `calibration_window` samples.
#[derive(Debug, Clone)]
pub struct CalibratingFeed<T = u16> {
    /// The normalizer configuration driving (re)calibration.
    config: NormalizerConfig,
    /// Raw samples buffered before the calibration window fills.
    pending: Vec<T>,
    /// Trailing `calibration_window` raw samples, maintained only when
    /// recalibration is enabled.
    history: VecDeque<T>,
    /// Active normalization parameters, present once calibrated.
    params: Option<NormalizationParams>,
    /// Raw samples accepted so far (never exceeds `budget`).
    received: usize,
    /// Raw samples drained through the sink so far.
    emitted: usize,
    /// Raw samples needed before the initial parameters can be estimated.
    calibration_point: usize,
    /// Sample count at which the next re-estimation fires (`usize::MAX`
    /// when recalibration is disabled).
    next_recalibration: usize,
    /// Maximum raw samples the feed will ever accept.
    budget: usize,
    /// Whether a re-estimation can ever fire within the budget — when it
    /// cannot (the default window == interval == budget configuration),
    /// the trailing-window history is not maintained at all, keeping the
    /// per-sample hot path free of ring-buffer work.
    recalibration_reachable: bool,
    /// Number of mid-stream re-estimations performed so far.
    recalibrations: usize,
    /// Nanoseconds this feed has spent estimating parameters (telemetry;
    /// always `0` when the `telemetry` feature is off).
    estimate_ns: u64,
}

impl<T: Into<f64> + Copy> CalibratingFeed<T> {
    /// Creates a feed that accepts at most `budget` raw samples and
    /// calibrates per `config`.
    pub fn new(config: NormalizerConfig, budget: usize) -> Self {
        let calibration_point = config.calibration_window.min(budget);
        // The k-th re-estimation fires lazily, before the sample *after*
        // count `calibration_point + k·interval` — so the first one is
        // reachable only if at least one sample lies beyond that count.
        let recalibration_reachable = config.recalibration_interval > 0
            && calibration_point + config.recalibration_interval < budget;
        CalibratingFeed {
            config,
            pending: Vec::new(),
            history: VecDeque::new(),
            params: None,
            received: 0,
            emitted: 0,
            calibration_point,
            next_recalibration: usize::MAX,
            budget,
            recalibration_reachable,
            recalibrations: 0,
            estimate_ns: 0,
        }
    }

    /// Raw samples accepted so far.
    pub fn received(&self) -> usize {
        self.received
    }

    /// The active normalization parameters (`None` until the calibration
    /// window has filled or [`CalibratingFeed::flush`] ran).
    pub fn params(&self) -> Option<NormalizationParams> {
        self.params
    }

    /// Number of mid-stream re-estimations performed so far (excluding the
    /// initial calibration).
    pub fn recalibrations(&self) -> usize {
        self.recalibrations
    }

    /// Nanoseconds this feed has spent estimating normalization parameters
    /// so far. Streaming sessions read this before and after a chunk to
    /// attribute the chunk's wall-clock to the normalize phase; it is `0`
    /// when telemetry is disabled.
    pub fn estimate_ns(&self) -> u64 {
        self.estimate_ns
    }

    /// Raw-sample count at which information produced at feed position `n`
    /// became available: never before the calibration window filled, and
    /// never more samples than the stream actually delivered.
    pub fn decision_point(&self, n: usize) -> usize {
        n.max(self.calibration_point).min(self.received)
    }

    /// Accepts a chunk (clipped to the remaining budget). Once the
    /// calibration window fills, drains the buffer and all further samples
    /// through `sink`; the sink returns `true` to stop the feed early.
    pub fn push(&mut self, chunk: &[T], sink: &mut dyn FnMut(f32) -> bool) {
        let take = &chunk[..chunk.len().min(self.budget - self.received)];
        self.received += take.len();
        match self.params {
            None => {
                self.pending.extend_from_slice(take);
                if self.pending.len() >= self.calibration_point {
                    self.calibrate(sink);
                }
            }
            Some(_) => self.feed(take, sink),
        }
    }

    /// End-of-stream: calibrates on whatever is buffered, exactly like the
    /// one-shot path does on a short prefix.
    pub fn flush(&mut self, sink: &mut dyn FnMut(f32) -> bool) {
        if self.params.is_none() && !self.pending.is_empty() {
            self.calibrate(sink);
        }
    }

    /// Initial calibration: estimate over the buffered window, then drain
    /// the buffer through the per-sample feed.
    fn calibrate(&mut self, sink: &mut dyn FnMut(f32) -> bool) {
        let sw = Stopwatch::start();
        self.params = Some(Normalizer::new(self.config).estimate(&self.pending));
        let ns = sw.elapsed_ns();
        self.estimate_ns += ns;
        let m = metrics();
        m.calibrations.incr();
        m.estimate_ns.add(ns);
        if self.recalibration_reachable {
            self.next_recalibration = self.calibration_point + self.config.recalibration_interval;
        }
        let buffered = std::mem::take(&mut self.pending);
        self.feed(&buffered, sink);
    }

    /// Re-estimates the parameters over the trailing window (in stream
    /// order) and schedules the next re-estimation.
    fn recalibrate(&mut self) {
        let sw = Stopwatch::start();
        let window = self.history.make_contiguous();
        self.params = Some(Normalizer::new(self.config).estimate(window));
        let ns = sw.elapsed_ns();
        self.estimate_ns += ns;
        let m = metrics();
        m.recalibrations.incr();
        m.estimate_ns.add(ns);
        self.recalibrations += 1;
        self.next_recalibration += self.config.recalibration_interval;
    }

    /// Drains raw samples through the sink, applying the shared per-sample
    /// formula with whatever parameters are active at each sample.
    fn feed(&mut self, raw: &[T], sink: &mut dyn FnMut(f32) -> bool) {
        let clip = self.config.outlier_clip;
        for &sample in raw {
            if self.emitted == self.next_recalibration {
                self.recalibrate();
            }
            let z = self
                .params
                // sf-lint: allow(panic) -- the calibration gate above sets params before emitting
                .expect("feed only runs after calibration")
                .apply(sample.into() as f32, clip);
            if self.recalibration_reachable {
                self.history.push_back(sample);
                if self.history.len() > self.config.calibration_window {
                    self.history.pop_front();
                }
            }
            self.emitted += 1;
            if sink(z) {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_signal(len: usize, mean: f32, amplitude: f32) -> Vec<f32> {
        (0..len)
            .map(|i| mean + amplitude * ((i % 20) as f32 / 20.0 - 0.5))
            .collect()
    }

    #[test]
    fn normalization_is_shift_and_scale_invariant() {
        let normalizer = Normalizer::default();
        let a = synthetic_signal(4000, 90.0, 20.0);
        // Same shape, different pore bias (shifted and scaled).
        let b: Vec<f32> = a.iter().map(|x| x * 1.7 + 35.0).collect();
        let na = normalizer.normalize(&a);
        let nb = normalizer.normalize(&b);
        for (x, y) in na.iter().zip(&nb) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn mean_mad_normalization_centres_signal() {
        let normalizer = Normalizer::default();
        let signal = synthetic_signal(2000, 450.0, 80.0);
        let normalized = normalizer.normalize(&signal);
        let mean: f32 = normalized.iter().sum::<f32>() / normalized.len() as f32;
        assert!(mean.abs() < 0.05);
    }

    #[test]
    fn std_dev_estimator_differs_from_mad() {
        let signal = synthetic_signal(2000, 90.0, 30.0);
        let mad = Normalizer::new(NormalizerConfig {
            scale: ScaleEstimator::MeanAbsoluteDeviation,
            ..Default::default()
        })
        .estimate(&signal);
        let sd = Normalizer::new(NormalizerConfig {
            scale: ScaleEstimator::StandardDeviation,
            ..Default::default()
        })
        .estimate(&signal);
        assert!(
            sd.scale > mad.scale,
            "std dev should exceed MAD for this signal"
        );
        assert_eq!(sd.shift, mad.shift);
    }

    #[test]
    fn outliers_are_clipped() {
        let mut signal = synthetic_signal(2000, 90.0, 10.0);
        signal[100] = 100_000.0;
        signal[200] = -100_000.0;
        let normalized = Normalizer::default().normalize(&signal);
        assert!(normalized.iter().all(|x| x.abs() <= FIXED_POINT_RANGE));
        assert_eq!(normalized[100], FIXED_POINT_RANGE);
        assert_eq!(normalized[200], -FIXED_POINT_RANGE);
    }

    #[test]
    fn calibration_window_limits_estimation() {
        let config = NormalizerConfig {
            calibration_window: 100,
            ..Default::default()
        };
        let normalizer = Normalizer::new(config);
        // First 100 samples around 90, later samples around 900: the estimate
        // must only reflect the calibration window.
        let mut signal = vec![90.0f32; 100];
        signal.extend(vec![900.0f32; 100]);
        let params = normalizer.estimate(&signal);
        assert!((params.shift - 90.0).abs() < 1.0);
    }

    #[test]
    fn quantize_round_trips_within_tolerance() {
        for v in [-4.0f32, -2.1, -0.5, 0.0, 0.3, 1.9, 4.0] {
            let q = quantize(v);
            assert!((dequantize(q) - v).abs() <= FIXED_POINT_RANGE / 127.0 + 1e-6);
        }
        assert_eq!(quantize(99.0), 127);
        assert_eq!(quantize(-99.0), -127);
    }

    #[test]
    fn quantized_normalization_matches_float_within_step() {
        let normalizer = Normalizer::default();
        let raw: Vec<u16> = (0..2000).map(|i| 400 + ((i * 7) % 200) as u16).collect();
        let float = normalizer.normalize_raw(&raw);
        let quantized = normalizer.normalize_raw_quantized(&raw);
        assert_eq!(float.len(), quantized.len());
        for (f, q) in float.iter().zip(&quantized) {
            assert!((dequantize(*q) - f).abs() < 0.04);
        }
    }

    #[test]
    fn constant_signal_does_not_divide_by_zero() {
        let normalized = Normalizer::default().normalize(&[42.0f32; 500]);
        assert!(normalized.iter().all(|x| x.is_finite()));
        assert!(normalized.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn empty_signal_is_empty() {
        assert!(Normalizer::default().normalize(&[]).is_empty());
        assert!(Normalizer::default().normalize_raw(&[]).is_empty());
    }

    /// A square wave whose baseline drifts linearly upward — the pore-bias
    /// drift rolling re-estimation exists to absorb.
    fn drifting_signal(len: usize) -> Vec<u16> {
        (0..len)
            .map(|i| 400 + (i / 8) as u16 + ((i * 13) % 48) as u16)
            .collect()
    }

    #[test]
    fn zero_interval_freezes_parameters_after_the_window() {
        // interval 0 must reproduce the historical freeze-after-window
        // behaviour exactly: estimate once, apply everywhere.
        let config = NormalizerConfig::default().with_recalibration_interval(0);
        let normalizer = Normalizer::new(config);
        let signal = drifting_signal(6_000);
        let params = normalizer.estimate(&signal);
        let frozen = normalizer.normalize_with(signal.iter().map(|&x| x as f64), params);
        assert_eq!(normalizer.normalize_raw(&signal), frozen);
    }

    #[test]
    fn recalibration_only_affects_samples_past_the_first_interval() {
        // With the default window == interval == 2000, the first
        // re-estimation fires at sample 4000: everything before it is
        // bit-identical to the frozen path.
        let rolling = Normalizer::default();
        let frozen = Normalizer::new(NormalizerConfig::default().with_recalibration_interval(0));
        let signal = drifting_signal(6_000);
        let a = rolling.normalize_raw(&signal);
        let b = frozen.normalize_raw(&signal);
        assert_eq!(a[..4_000], b[..4_000]);
        assert_ne!(a[4_000..], b[4_000..], "recalibration should kick in");
    }

    #[test]
    fn recalibration_tracks_a_drifting_baseline() {
        let config = NormalizerConfig::default()
            .with_calibration_window(500)
            .with_recalibration_interval(250);
        let signal: Vec<u16> = (0..8_000)
            .map(|i| 400 + (i / 16) as u16 + ((i * 13) % 48) as u16)
            .collect();
        let rolling = Normalizer::new(config).normalize_raw(&signal);
        let frozen = Normalizer::new(config.with_recalibration_interval(0)).normalize_raw(&signal);
        // By the tail of the read the baseline has drifted ~460 counts: the
        // frozen estimate saturates against the clip, the rolling one stays
        // centred.
        let tail_mean = |v: &[f32]| v[7_000..].iter().sum::<f32>() / 1_000.0;
        assert!(tail_mean(&frozen) > 3.9, "frozen {}", tail_mean(&frozen));
        assert!(
            tail_mean(&rolling).abs() < 2.5,
            "rolling {}",
            tail_mean(&rolling)
        );
    }

    #[test]
    fn chunked_feed_is_bit_identical_to_batch_for_any_chunking() {
        let config = NormalizerConfig::default()
            .with_calibration_window(300)
            .with_recalibration_interval(170);
        let signal = drifting_signal(5_000);
        let want = Normalizer::new(config).normalize_raw(&signal);
        for chunk_size in [1usize, 7, 512, 10_000] {
            let mut got = Vec::new();
            let mut feed = CalibratingFeed::new(config, signal.len());
            let mut sink = |z: f32| {
                got.push(z);
                false
            };
            for chunk in signal.chunks(chunk_size) {
                feed.push(chunk, &mut sink);
            }
            feed.flush(&mut sink);
            assert_eq!(got, want, "chunk {chunk_size}");
            assert!(feed.recalibrations() > 0);
        }
    }

    #[test]
    fn feed_reports_recalibration_schedule() {
        let config = NormalizerConfig::default()
            .with_calibration_window(400)
            .with_recalibration_interval(200);
        let signal = drifting_signal(1_000);
        let mut feed = CalibratingFeed::new(config, signal.len());
        let mut sink = |_z: f32| false;
        feed.push(&signal[..399], &mut sink);
        assert!(feed.params().is_none(), "window not yet filled");
        feed.push(&signal[399..600], &mut sink);
        let first = feed.params().expect("calibrated at 400");
        // Re-estimations at 600 fire lazily, before the *next* sample.
        assert_eq!(feed.recalibrations(), 0);
        feed.push(&signal[600..1_000], &mut sink);
        assert_eq!(feed.recalibrations(), 2, "re-estimated at 600 and 800");
        let last = feed.params().expect("still calibrated");
        assert!(first.drift(last) > 0.0, "drifting signal moved the params");
        assert_eq!(feed.received(), 1_000);
    }

    #[test]
    fn short_stream_flush_matches_one_shot_short_signal() {
        let config = NormalizerConfig::default();
        let signal = drifting_signal(700); // shorter than the window
        let want = Normalizer::new(config).normalize_raw(&signal);
        let mut got = Vec::new();
        // A budget larger than the read (a session's prefix budget): the
        // window never fills, so normalization happens in flush().
        let mut feed = CalibratingFeed::new(config, 2_000);
        for chunk in signal.chunks(64) {
            feed.push(chunk, &mut |z| {
                got.push(z);
                false
            });
        }
        assert!(got.is_empty(), "window never filled");
        assert!(feed.params().is_none());
        feed.flush(&mut |z| {
            got.push(z);
            false
        });
        assert_eq!(got, want);
    }

    #[test]
    fn params_drift_is_scale_relative() {
        let a = NormalizationParams {
            shift: 100.0,
            scale: 10.0,
        };
        let b = NormalizationParams {
            shift: 105.0,
            scale: 12.0,
        };
        assert!((a.drift(b) - 0.7).abs() < 1e-6);
        assert_eq!(a.drift(a), 0.0);
    }
}
