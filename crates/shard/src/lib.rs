//! Sharded multi-target reference classification.
//!
//! The single-reference [`sf_sdtw::SquiggleFilter`] answers "is this read my
//! virus?"; this crate scales the *reference* side to answer "is this read
//! any of my targets — and which one?". It follows the paper's hardware
//! story (one programmed filter per target, scaled out) as a software
//! fan-out/merge:
//!
//! * [`classifier`] — the [`ShardedClassifier`]: one single-reference
//!   classifier per target, fanned per read, merged into one best-of
//!   [`sf_sdtw::StreamClassification`] carrying the winning
//!   [`sf_sdtw::TargetId`]. A 1-shard catalog is bit-identical to the
//!   single-reference path, and the merge is order-invariant.
//! * [`prefilter`] — the optional [`MinimizerPrefilter`]: basecall a short
//!   prefix, count minimizer anchors per reference, and prune shards that
//!   cannot map before any sDTW runs. Approximate by design, fail-open by
//!   design; pruning is reported via `shard.*` telemetry.
//! * [`panel`] — pan-viral panel workloads built from `sf-genome`'s virus
//!   catalog and Table 2 strain machinery (≥ 8 targets including
//!   near-identical strains), used by `tests/panel_accuracy.rs` and the
//!   `batch_scaling` bench's `sharding` section.
//! * [`telemetry`] — the `shard.*` metric names.

#![warn(missing_docs)]

pub mod classifier;
pub mod panel;
pub mod prefilter;
pub mod telemetry;

pub use classifier::{merge_outcomes, Shard, ShardedClassifier, ShardedSession};
pub use panel::{
    pan_viral_panel, panel_classifier, panel_prefilter, target_group, PanelConfig, PanelTarget,
};
pub use prefilter::{MinimizerPrefilter, PrefilterConfig, PrefilterOutcome};
