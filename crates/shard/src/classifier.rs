//! The sharded multi-target classifier: per-reference fan-out with an
//! order-invariant best-of merge.
//!
//! A [`ShardedClassifier`] holds one single-reference classifier per target
//! (a [`sf_sdtw::SquiggleFilter`] or [`sf_sdtw::MultiStageFilter`] in the
//! intended use), fans every read across the shards — batch and streaming
//! paths both, since the fan-out itself implements [`ReadClassifier`] — and
//! merges the per-shard outcomes into one best-of [`StreamClassification`]
//! carrying the winning [`TargetId`].
//!
//! # Merge semantics
//!
//! The merge treats [`StreamClassification::score`] as a *cost* (lower is
//! better — the sDTW filters' convention):
//!
//! * The merged **verdict** is Accept iff any live shard accepted. Reject
//!   means the read matched *no* target — exactly the depletion semantics a
//!   pan-target panel wants.
//! * The **winner** is the lowest-cost shard among the accepting shards (or
//!   among all live shards when everything rejected), ties broken by the
//!   smaller [`TargetId`]. The merged classification is the winner's, with
//!   [`StreamClassification::target`] stamped.
//! * The merged **samples_consumed** is the maximum over live shards: the
//!   read can only be ejected once every shard has had its say, so that is
//!   what the decision cost in sequencing time.
//!
//! Three invariants are pinned by `tests/sharding_parity.rs`:
//!
//! * a 1-shard catalog is **bit-identical** to the single-reference path
//!   (whole-struct equality, with `target = Some(TargetId(0))`),
//! * [`merge_outcomes`] is a pure function of the `(id, outcome)` multiset —
//!   permuting its input never changes the result,
//! * streaming ≡ one-shot at every chunk size, and sharded sessions behave
//!   identically under the `sf-sched` micro-batched scheduler.

use crate::prefilter::MinimizerPrefilter;
use crate::telemetry::metrics;
use sf_sdtw::{ClassifierSession, Decision, ReadClassifier, StreamClassification, TargetId};

/// One target reference in the catalog: a display name and the
/// single-reference classifier programmed for it.
#[derive(Debug, Clone)]
pub struct Shard<C> {
    name: String,
    classifier: C,
}

impl<C> Shard<C> {
    /// The target's display name (e.g. the virus or strain label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The single-reference classifier bound to this target.
    pub fn classifier(&self) -> &C {
        &self.classifier
    }
}

/// A multi-target classifier: one shard per reference, merged best-of
/// decisions.
///
/// # Examples
///
/// ```
/// use sf_shard::ShardedClassifier;
/// use sf_sdtw::{FilterConfig, ReadClassifier, SquiggleFilter, TargetId};
/// use sf_pore_model::KmerModel;
/// use sf_genome::random::random_genome;
/// use sf_squiggle::RawSquiggle;
///
/// let model = KmerModel::synthetic_r94(0);
/// let catalog: Vec<_> = (0..3)
///     .map(|i| {
///         let genome = random_genome(20 + i, 1_500);
///         let filter = SquiggleFilter::from_genome(&model, &genome, FilterConfig::hardware(f64::MAX));
///         (format!("virus-{i}"), filter)
///     })
///     .collect();
/// let sharded = ShardedClassifier::new(catalog);
/// assert_eq!(sharded.shard_count(), 3);
///
/// let outcome = sharded.classify_stream(&RawSquiggle::new(vec![500u16; 2_500], 4_000.0));
/// let winner = outcome.target.expect("sharded outcomes carry a target");
/// assert!(winner.index() < 3);
/// assert!(sharded.target_name(winner).starts_with("virus-"));
/// ```
#[derive(Debug, Clone)]
pub struct ShardedClassifier<C> {
    shards: Vec<Shard<C>>,
    prefilter: Option<MinimizerPrefilter>,
}

impl<C> ShardedClassifier<C> {
    /// Builds a catalog from `(name, classifier)` pairs. The position of a
    /// pair is its [`TargetId`].
    pub fn new<I>(shards: I) -> Self
    where
        I: IntoIterator<Item = (String, C)>,
    {
        let shards: Vec<Shard<C>> = shards
            .into_iter()
            .map(|(name, classifier)| Shard { name, classifier })
            .collect();
        assert!(!shards.is_empty(), "a catalog needs at least one target");
        ShardedClassifier {
            shards,
            prefilter: None,
        }
    }

    /// Attaches a minimizer-seeding prefilter (built over the same
    /// references, in the same order) that prunes shards before sDTW runs.
    #[must_use]
    pub fn with_prefilter(mut self, prefilter: MinimizerPrefilter) -> Self {
        assert_eq!(
            prefilter.target_count(),
            self.shards.len(),
            "prefilter must index exactly the catalog references"
        );
        self.prefilter = Some(prefilter);
        self
    }

    /// Number of target references in the catalog.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in [`TargetId`] order.
    pub fn shards(&self) -> &[Shard<C>] {
        &self.shards
    }

    /// The display name of a target.
    pub fn target_name(&self, target: TargetId) -> &str {
        &self.shards[target.index()].name
    }

    /// The attached prefilter, if any.
    pub fn prefilter(&self) -> Option<&MinimizerPrefilter> {
        self.prefilter.as_ref()
    }
}

impl<C: ReadClassifier> ShardedClassifier<C> {
    /// Opens a streaming session fanning one read across every shard (the
    /// concrete type behind [`ReadClassifier::start_read`]).
    pub fn session(&self) -> ShardedSession<'_> {
        metrics().fanout_sessions.add(self.shards.len() as u64);
        ShardedSession {
            shards: self
                .shards
                .iter()
                .map(|shard| ShardSlot {
                    session: shard.classifier.start_read(),
                    outcome: None,
                    pruned: false,
                })
                .collect(),
            gate: self.prefilter.as_ref().map(|prefilter| PrefilterGate {
                prefilter,
                buffer: Vec::new(),
                resolved: false,
            }),
            decision: Decision::Wait,
            merged: None,
        }
    }
}

impl<C: ReadClassifier> ReadClassifier for ShardedClassifier<C> {
    fn start_read(&self) -> Box<dyn ClassifierSession + '_> {
        Box::new(self.session())
    }

    fn max_decision_samples(&self) -> usize {
        let widest = self
            .shards
            .iter()
            .map(|shard| shard.classifier.max_decision_samples())
            .max()
            .unwrap_or(0);
        // With a prefilter, buffered samples replay into the survivors at
        // the gate, so the merged decision can fire no later than the
        // slower of the gate and the widest shard.
        match &self.prefilter {
            Some(prefilter) => widest.max(prefilter.config().decision_samples),
            None => widest,
        }
    }
}

/// Merges per-shard outcomes into the best-of classification.
///
/// A pure function of the `(id, outcome)` multiset: permuting `outcomes`
/// never changes the result (ties on score resolve to the smaller
/// [`TargetId`], which travels with its outcome). See the module docs for
/// the verdict/winner/samples semantics.
///
/// # Panics
///
/// Panics on an empty slice — a merged decision needs at least one shard.
pub fn merge_outcomes(outcomes: &[(TargetId, StreamClassification)]) -> StreamClassification {
    assert!(!outcomes.is_empty(), "cannot merge zero shard outcomes");
    let any_accept = outcomes.iter().any(|(_, c)| c.verdict.is_accept());
    let (winner_id, winner) = outcomes
        .iter()
        .filter(|(_, c)| c.verdict.is_accept() == any_accept)
        .min_by(|(ida, a), (idb, b)| a.score.total_cmp(&b.score).then(ida.cmp(idb)))
        // The filter keeps at least one element: every outcome when nothing
        // accepted, the accepting ones otherwise.
        // sf-lint: allow(panic) -- filter is non-empty by the any_accept choice
        .expect("non-empty candidate pool");
    let samples_consumed = outcomes
        .iter()
        .map(|(_, c)| c.samples_consumed)
        .max()
        // sf-lint: allow(panic) -- guarded by the non-empty assert above
        .expect("non-empty outcomes");
    StreamClassification {
        target: Some(*winner_id),
        samples_consumed,
        ..*winner
    }
}

/// Prefilter state while a session buffers its gate prefix.
struct PrefilterGate<'a> {
    prefilter: &'a MinimizerPrefilter,
    buffer: Vec<u16>,
    resolved: bool,
}

/// One shard's in-flight state inside a [`ShardedSession`].
struct ShardSlot<'a> {
    session: Box<dyn ClassifierSession + 'a>,
    /// Latched the moment the shard's decision turns final (the session is
    /// finalized then and never pushed again).
    outcome: Option<StreamClassification>,
    /// Pruned by the prefilter: never fed, excluded from the merge.
    pruned: bool,
}

impl ShardSlot<'_> {
    fn is_final(&self) -> bool {
        self.outcome.is_some()
    }

    fn samples_consumed(&self) -> usize {
        match &self.outcome {
            Some(outcome) => outcome.samples_consumed,
            None => self.session.samples_consumed(),
        }
    }
}

/// An in-progress sharded classification of one read.
///
/// Without a prefilter, every chunk is forwarded to every shard whose
/// decision is still open; the merged decision turns final once *all* live
/// shards are final. With a prefilter, raw samples are buffered until the
/// gate's `decision_samples` fill, the surviving shards are chosen, and the
/// buffer replays into them — pruned shards never see a sample.
pub struct ShardedSession<'a> {
    shards: Vec<ShardSlot<'a>>,
    gate: Option<PrefilterGate<'a>>,
    decision: Decision,
    merged: Option<StreamClassification>,
}

impl std::fmt::Debug for ShardedSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSession")
            .field("shards", &self.shards.len())
            .field("decision", &self.decision)
            .field("merged", &self.merged)
            .finish()
    }
}

impl ShardedSession<'_> {
    /// Number of shards pruned by the prefilter for this read (0 until the
    /// gate resolves, and always 0 without a prefilter).
    pub fn pruned_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.pruned).count()
    }

    /// Number of shards still participating in the merge.
    pub fn live_shards(&self) -> usize {
        self.shards.len() - self.pruned_shards()
    }

    /// Resolves the prefilter gate (judging whatever is buffered) and
    /// replays the buffer into the surviving shards.
    fn resolve_gate(&mut self) {
        let Some(gate) = self.gate.as_mut() else {
            return;
        };
        if gate.resolved {
            return;
        }
        gate.resolved = true;
        let outcome = gate.prefilter.evaluate(&gate.buffer);
        for (slot, &keep) in self.shards.iter_mut().zip(&outcome.keep) {
            slot.pruned = !keep;
        }
        let buffer = std::mem::take(&mut gate.buffer);
        self.feed_live(&buffer);
    }

    /// Forwards samples to every live, still-open shard, latching outcomes
    /// as decisions turn final.
    fn feed_live(&mut self, samples: &[u16]) {
        for slot in &mut self.shards {
            if slot.pruned || slot.is_final() {
                continue;
            }
            if slot.session.push_chunk(samples).is_final() {
                slot.outcome = Some(slot.session.finalize());
            }
        }
        self.try_merge();
    }

    /// Latches the merged classification once every live shard is final.
    fn try_merge(&mut self) {
        if self.merged.is_some() {
            return;
        }
        if self
            .shards
            .iter()
            .any(|slot| !slot.pruned && !slot.is_final())
        {
            return;
        }
        self.latch_merge();
    }

    /// Merges whatever the live shards have latched (all of them must be
    /// final when this is called).
    fn latch_merge(&mut self) {
        let outcomes: Vec<(TargetId, StreamClassification)> = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, slot)| !slot.pruned)
            .map(|(i, slot)| {
                (
                    TargetId(i as u32),
                    // sf-lint: allow(panic) -- callers finalize every live shard first
                    slot.outcome.expect("live shard is final"),
                )
            })
            .collect();
        let merged = merge_outcomes(&outcomes);
        self.decision = merged.verdict.into();
        self.merged = Some(merged);
        metrics().reads.add(1);
    }
}

impl ClassifierSession for ShardedSession<'_> {
    fn push_chunk(&mut self, chunk: &[u16]) -> Decision {
        if self.decision.is_final() {
            return self.decision;
        }
        if let Some(gate) = self.gate.as_mut() {
            if !gate.resolved {
                gate.buffer.extend_from_slice(chunk);
                if gate.buffer.len() >= gate.prefilter.config().decision_samples {
                    self.resolve_gate();
                }
                return self.decision;
            }
        }
        self.feed_live(chunk);
        self.decision
    }

    fn decision(&self) -> Decision {
        self.decision
    }

    fn samples_consumed(&self) -> usize {
        if let Some(merged) = &self.merged {
            return merged.samples_consumed;
        }
        if let Some(gate) = &self.gate {
            if !gate.resolved {
                return gate.buffer.len();
            }
        }
        self.shards
            .iter()
            .filter(|slot| !slot.pruned)
            .map(|slot| slot.samples_consumed())
            .max()
            .unwrap_or(0)
    }

    fn finalize(&mut self) -> StreamClassification {
        if let Some(merged) = self.merged {
            return merged;
        }
        // A read that ended inside the gate window: judge what there is
        // (evaluate fails open on a prefix too short to basecall) and give
        // the survivors the buffered signal before resolving them.
        self.resolve_gate();
        for slot in &mut self.shards {
            if !slot.pruned && !slot.is_final() {
                slot.outcome = Some(slot.session.finalize());
            }
        }
        self.latch_merge();
        // sf-lint: allow(panic) -- latch_merge always sets the merged outcome
        self.merged.expect("merge latched")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_genome::random::random_genome;
    use sf_genome::Sequence;
    use sf_pore_model::{AdcModel, KmerModel};
    use sf_sdtw::{FilterConfig, FilterVerdict, SquiggleFilter};
    use sf_squiggle::RawSquiggle;

    fn noiseless_squiggle(model: &KmerModel, fragment: &Sequence) -> RawSquiggle {
        model.expected_raw_squiggle(fragment, 10, &AdcModel::default())
    }

    fn catalog(model: &KmerModel, genomes: &[Sequence]) -> ShardedClassifier<SquiggleFilter> {
        ShardedClassifier::new(genomes.iter().enumerate().map(|(i, genome)| {
            (
                format!("target-{i}"),
                SquiggleFilter::from_genome(model, genome, FilterConfig::hardware(f64::MAX)),
            )
        }))
    }

    #[test]
    fn winner_is_the_true_target() {
        let model = KmerModel::synthetic_r94(0);
        let genomes: Vec<Sequence> = (0..4).map(|i| random_genome(30 + i, 2_000)).collect();
        let sharded = catalog(&model, &genomes);
        for (i, genome) in genomes.iter().enumerate() {
            let read = noiseless_squiggle(&model, &genome.subsequence(300, 900));
            let outcome = sharded.classify_stream(&read);
            assert_eq!(outcome.target, Some(TargetId(i as u32)), "read {i}");
            assert_eq!(
                sharded.target_name(TargetId(i as u32)),
                format!("target-{i}")
            );
        }
    }

    #[test]
    fn merged_samples_consumed_is_the_shard_maximum() {
        let model = KmerModel::synthetic_r94(0);
        let genomes: Vec<Sequence> = (0..2).map(|i| random_genome(35 + i, 2_000)).collect();
        let sharded = catalog(&model, &genomes);
        let read = noiseless_squiggle(&model, &genomes[0].subsequence(0, 800));
        let merged = sharded.classify_stream(&read);
        let per_shard: Vec<usize> = sharded
            .shards()
            .iter()
            .map(|s| s.classifier().classify_stream(&read).samples_consumed)
            .collect();
        assert_eq!(
            merged.samples_consumed,
            per_shard.iter().copied().max().unwrap()
        );
    }

    #[test]
    fn merge_prefers_accepts_then_lowest_cost_then_smallest_id() {
        let base = StreamClassification {
            verdict: FilterVerdict::Reject,
            score: 10.0,
            result: None,
            samples_consumed: 100,
            decided_early: false,
            target: None,
        };
        let accept = |score: f64| StreamClassification {
            verdict: FilterVerdict::Accept,
            score,
            ..base
        };
        // An accept beats a lower-cost reject.
        let merged = merge_outcomes(&[
            (TargetId(0), StreamClassification { score: 1.0, ..base }),
            (TargetId(1), accept(5.0)),
        ]);
        assert_eq!(merged.verdict, FilterVerdict::Accept);
        assert_eq!(merged.target, Some(TargetId(1)));
        // Among accepts, the lowest cost wins; ties go to the smaller id.
        let merged = merge_outcomes(&[
            (TargetId(2), accept(3.0)),
            (TargetId(1), accept(3.0)),
            (TargetId(0), accept(4.0)),
        ]);
        assert_eq!(merged.target, Some(TargetId(1)));
        assert_eq!(merged.score, 3.0);
        // All rejects: still a winner (the closest miss), verdict Reject.
        let merged = merge_outcomes(&[
            (TargetId(0), StreamClassification { score: 9.0, ..base }),
            (TargetId(1), StreamClassification { score: 2.0, ..base }),
        ]);
        assert_eq!(merged.verdict, FilterVerdict::Reject);
        assert_eq!(merged.target, Some(TargetId(1)));
    }

    #[test]
    fn empty_read_finalizes_like_the_single_path() {
        let model = KmerModel::synthetic_r94(0);
        let genomes = vec![random_genome(44, 1_500)];
        let sharded = catalog(&model, &genomes);
        let mut session = sharded.session();
        let merged = session.finalize();
        let single = sharded.shards()[0]
            .classifier()
            .classify_stream(&RawSquiggle::new(Vec::new(), 4_000.0));
        assert_eq!(
            merged,
            StreamClassification {
                target: Some(TargetId(0)),
                ..single
            }
        );
    }
}
