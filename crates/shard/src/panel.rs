//! Pan-viral panel workloads: a multi-target catalog built from
//! `sf-genome`'s virus catalog and strain machinery.
//!
//! The panel answers the scenario the single-reference benchmarks cannot:
//! one flow cell screening for *any* of a set of circulating viruses, with
//! near-identical strains of the primary target in the catalog (the paper's
//! Table 2 point — strains differ by only 17–23 SNPs, so telling them apart
//! at read level is hopeless, but telling the *virus* apart is not). Targets
//! therefore carry a `group`: every strain of a virus shares its group, and
//! accuracy is pinned at group level in `tests/panel_accuracy.rs`.

use crate::classifier::ShardedClassifier;
use crate::prefilter::{MinimizerPrefilter, PrefilterConfig};
use sf_genome::catalog::epidemic_viruses;
use sf_genome::random::GenomeGenerator;
use sf_genome::strain::simulate_table2_strains;
use sf_genome::Sequence;
use sf_pore_model::KmerModel;
use sf_sdtw::{FilterConfig, SquiggleFilter, TargetId};

/// One target in a pan-viral panel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanelTarget {
    /// Unique display name (virus name, or `"<virus> <clade>"` for strains).
    pub name: String,
    /// Attribution group: strains share their base virus's group.
    pub group: String,
    /// The target's reference genome.
    pub genome: Sequence,
}

/// Shape of a generated pan-viral panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PanelConfig {
    /// Reference length per target (real epidemic genomes are 7–30 kb; the
    /// panel scales them down so sweeps stay fast while keeping per-virus
    /// GC content from the catalog).
    pub genome_length: usize,
    /// Distinct catalog viruses (the first `viruses` entries of
    /// [`epidemic_viruses`]).
    pub viruses: usize,
    /// Near-identical Table 2 strains of the *first* virus appended to the
    /// catalog (at most 5).
    pub strains: usize,
    /// Master seed; every genome and strain derives deterministically.
    pub seed: u64,
}

impl Default for PanelConfig {
    /// 4 distinct viruses + 5 strains of the first = a 9-target panel.
    fn default() -> Self {
        PanelConfig {
            genome_length: 8_000,
            viruses: 4,
            strains: 5,
            seed: 0,
        }
    }
}

impl PanelConfig {
    /// Total targets the panel will contain.
    pub fn target_count(&self) -> usize {
        self.viruses + self.strains
    }
}

/// Generates a deterministic pan-viral panel: one synthetic genome per
/// catalog virus (named and GC-matched from [`epidemic_viruses`]), plus
/// Table 2 strains of the first virus.
///
/// # Examples
///
/// ```
/// use sf_shard::{pan_viral_panel, PanelConfig};
///
/// let config = PanelConfig { genome_length: 1_000, ..PanelConfig::default() };
/// let panel = pan_viral_panel(&config);
/// assert_eq!(panel.len(), 9);
/// assert_eq!(panel[0].name, "Poliovirus");
/// // Strains of the first virus share its group...
/// assert_eq!(panel[4].group, panel[0].group);
/// // ...but every name is unique.
/// assert!(panel.iter().all(|t| panel.iter().filter(|u| u.name == t.name).count() == 1));
/// ```
pub fn pan_viral_panel(config: &PanelConfig) -> Vec<PanelTarget> {
    let catalog = epidemic_viruses();
    assert!(
        (1..=catalog.len()).contains(&config.viruses),
        "viruses must be 1..={}",
        catalog.len()
    );
    assert!(config.strains <= 5, "Table 2 defines 5 clades");
    let mut panel: Vec<PanelTarget> = catalog
        .iter()
        .take(config.viruses)
        .enumerate()
        .map(|(i, virus)| PanelTarget {
            name: virus.name.to_string(),
            group: virus.name.to_string(),
            genome: GenomeGenerator::new(config.seed.wrapping_add(1 + i as u64))
                .gc_content(virus.gc_content)
                .generate(config.genome_length),
        })
        .collect();
    let base = panel[0].clone();
    panel.extend(
        simulate_table2_strains(&base.genome, config.seed)
            .into_iter()
            .take(config.strains)
            .map(|strain| PanelTarget {
                name: format!("{} {}", base.name, strain.clade),
                group: base.group.clone(),
                genome: strain.genome,
            }),
    );
    panel
}

/// Builds a [`ShardedClassifier`] with one [`SquiggleFilter`] per panel
/// target, all sharing `config`.
pub fn panel_classifier(
    model: &KmerModel,
    panel: &[PanelTarget],
    config: FilterConfig,
) -> ShardedClassifier<SquiggleFilter> {
    ShardedClassifier::new(panel.iter().map(|target| {
        (
            target.name.clone(),
            SquiggleFilter::from_genome(model, &target.genome, config),
        )
    }))
}

/// Builds a [`MinimizerPrefilter`] over the panel's references, in catalog
/// order (attachable to the classifier from [`panel_classifier`]).
pub fn panel_prefilter(
    model: KmerModel,
    panel: &[PanelTarget],
    config: PrefilterConfig,
) -> MinimizerPrefilter {
    MinimizerPrefilter::new(model, panel.iter().map(|target| &target.genome), config)
}

/// The attribution group of a winning target, for group-level accuracy
/// scoring.
pub fn target_group(panel: &[PanelTarget], target: TargetId) -> &str {
    &panel[target.index()].group
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_is_deterministic_and_respects_shape() {
        let config = PanelConfig {
            genome_length: 1_200,
            viruses: 3,
            strains: 2,
            seed: 9,
        };
        let a = pan_viral_panel(&config);
        let b = pan_viral_panel(&config);
        assert_eq!(a, b);
        assert_eq!(a.len(), config.target_count());
        assert!(a.iter().all(|t| t.genome.len() == 1_200));
        // Distinct viruses, distinct genomes.
        assert_ne!(a[0].genome, a[1].genome);
        // Strains are near-identical to their base, not to other viruses.
        assert!(a[3].genome.mismatches(&a[0].genome) <= 23);
        assert!(a[3].genome.mismatches(&a[1].genome) > 100);
    }

    #[test]
    fn gc_content_tracks_the_catalog() {
        let config = PanelConfig {
            genome_length: 6_000,
            viruses: 4,
            strains: 0,
            seed: 3,
        };
        let panel = pan_viral_panel(&config);
        for (target, virus) in panel.iter().zip(epidemic_viruses()) {
            assert_eq!(target.name, virus.name);
            assert!(
                (target.genome.gc_content() - virus.gc_content).abs() < 0.05,
                "{}: gc {} vs {}",
                virus.name,
                target.genome.gc_content(),
                virus.gc_content
            );
        }
    }
}
