//! Metric names (and private handles) for the sharded classifier.
//!
//! Naming follows `docs/observability.md`: `shard.*` covers the multi-target
//! fan-out and the minimizer prefilter. All metrics here are counters flushed
//! at session granularity (session open, prefilter resolution, merge) — the
//! per-sample work happens inside the per-shard sessions, which carry their
//! own `sdtw.*` instrumentation.

use sf_telemetry::{register_counter, Counter};
use std::sync::OnceLock;

/// Counter: sharded reads resolved into a merged best-of classification.
pub const SHARD_READS: &str = "shard.reads";
/// Counter: per-target sessions opened by the fan-out (one per shard per
/// read; `fanout_sessions / reads` is the mean catalog width).
pub const SHARD_FANOUT_SESSIONS: &str = "shard.fanout_sessions";
/// Counter: minimizer prefilter evaluations (one per read when the
/// prefilter is attached).
pub const SHARD_PREFILTER_EVALS: &str = "shard.prefilter_evals";
/// Counter: shards pruned by the prefilter before any sDTW work
/// (`prefilter_pruned / prefilter_evals` is the mean shards pruned per read).
pub const SHARD_PREFILTER_PRUNED: &str = "shard.prefilter_pruned";
/// Counter: prefilter evaluations that kept every shard because the
/// basecalled prefix was too short or no shard cleared the anchor bar —
/// the fail-open path that keeps the prefilter verdict-safe for depletion.
pub const SHARD_PREFILTER_FAIL_OPEN: &str = "shard.prefilter_fail_open";

pub(crate) struct Metrics {
    pub reads: &'static Counter,
    pub fanout_sessions: &'static Counter,
    pub prefilter_evals: &'static Counter,
    pub prefilter_pruned: &'static Counter,
    pub prefilter_fail_open: &'static Counter,
}

/// The crate's registered metric handles (registered once, then lock-free).
pub(crate) fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(|| Metrics {
        reads: register_counter(SHARD_READS),
        fanout_sessions: register_counter(SHARD_FANOUT_SESSIONS),
        prefilter_evals: register_counter(SHARD_PREFILTER_EVALS),
        prefilter_pruned: register_counter(SHARD_PREFILTER_PRUNED),
        prefilter_fail_open: register_counter(SHARD_PREFILTER_FAIL_OPEN),
    })
}
