//! Minimizer-seeding shard prefilter: cheap candidate selection before sDTW.
//!
//! With a wide target catalog, running full subsequence DTW against every
//! reference for every read multiplies the dominant cost by the catalog
//! width. The classical seeding observation (minimap2, UNCALLED) is that a
//! read matching a reference shares exact minimizer hits with it, so a
//! basecalled prefix with (almost) no anchors against a reference cannot map
//! there — and its shard can be skipped without running sDTW at all.
//!
//! The prefilter is *approximate*: the HMM basecaller is noisy and short
//! prefixes carry few minimizers, so pruning can in principle drop the true
//! target. Two design rules keep it verdict-safe in practice:
//!
//! * **Fail open.** If the basecalled prefix is too short to judge, or no
//!   shard clears the anchor bar, every shard is kept. Background reads
//!   therefore still reject against the full catalog (depletion semantics
//!   are preserved exactly), and a hard-to-basecall target read degrades to
//!   the unpruned path instead of a wrong eject.
//! * **Verdict-level pinning, not cost equality.** `tests/panel_accuracy.rs`
//!   pins that turning the prefilter on never flips an accept into a reject
//!   on the panel fixture; `shard.prefilter_pruned` telemetry reports the
//!   work saved.

use crate::telemetry::metrics;
use sf_align::{MinimizerIndex, MinimizerParams};
use sf_basecall::{Basecaller, BasecallerConfig};
use sf_genome::Sequence;
use sf_pore_model::{AdcModel, KmerModel};

/// Configuration of the minimizer shard prefilter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefilterConfig {
    /// Raw samples buffered before the prefilter decides which shards to
    /// keep (one Guppy-style basecall chunk by default).
    pub decision_samples: usize,
    /// A shard survives when the basecalled prefix has at least this many
    /// minimizer anchors against its reference (better strand).
    pub min_anchors: usize,
    /// Fail open (keep all shards) while the basecalled prefix is shorter
    /// than this — too few bases to seed anchors at all.
    pub min_basecall_bases: usize,
    /// Minimizer scheme used for the per-shard indices.
    pub minimizer: MinimizerParams,
    /// HMM basecaller parameters for the prefix basecall.
    pub basecaller: BasecallerConfig,
    /// ADC calibration used to recover picoamperes from raw codes.
    pub adc: AdcModel,
}

impl Default for PrefilterConfig {
    fn default() -> Self {
        PrefilterConfig {
            decision_samples: 2_000,
            min_anchors: 3,
            min_basecall_bases: 50,
            minimizer: MinimizerParams::default(),
            basecaller: BasecallerConfig::default(),
            adc: AdcModel::default(),
        }
    }
}

impl PrefilterConfig {
    /// A preset for realistically noisy signal: the HMM basecaller's error
    /// rate on simulated noisy squiggles leaves few exact 13-mers intact, so
    /// the default scheme almost always fails open there. Shorter 9-mer
    /// seeds survive the error rate; spurious 9-mer hits are common enough
    /// that the anchor bar stays at 3.
    pub fn noisy() -> Self {
        PrefilterConfig {
            minimizer: MinimizerParams { k: 9, w: 8 },
            ..PrefilterConfig::default()
        }
    }
}

/// The resolved prefilter judgement for one read prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefilterOutcome {
    /// Per-shard survival, in catalog order. Pruned shards never run sDTW.
    pub keep: Vec<bool>,
    /// Per-shard anchor count (the better of the two strands); all zeros
    /// when the prefix could not be basecalled far enough.
    pub anchor_counts: Vec<usize>,
    /// `true` when every shard was kept defensively (prefix too short, or
    /// no shard cleared `min_anchors`) rather than on anchor evidence.
    pub fail_open: bool,
}

impl PrefilterOutcome {
    /// Number of shards pruned by this judgement.
    pub fn pruned(&self) -> usize {
        self.keep.iter().filter(|&&k| !k).count()
    }
}

/// A minimizer index per target reference plus the shared prefix basecaller.
#[derive(Debug, Clone)]
pub struct MinimizerPrefilter {
    basecaller: Basecaller,
    indices: Vec<MinimizerIndex>,
    config: PrefilterConfig,
}

impl MinimizerPrefilter {
    /// Builds one minimizer index per target reference (catalog order must
    /// match the sharded classifier the prefilter is attached to).
    pub fn new<'a, I>(model: KmerModel, references: I, config: PrefilterConfig) -> Self
    where
        I: IntoIterator<Item = &'a Sequence>,
    {
        let indices: Vec<MinimizerIndex> = references
            .into_iter()
            .map(|reference| MinimizerIndex::build(reference, config.minimizer))
            .collect();
        assert!(
            !indices.is_empty(),
            "prefilter needs at least one reference"
        );
        MinimizerPrefilter {
            basecaller: Basecaller::new(model, config.basecaller),
            indices,
            config,
        }
    }

    /// Number of target references indexed.
    pub fn target_count(&self) -> usize {
        self.indices.len()
    }

    /// The configuration.
    pub fn config(&self) -> &PrefilterConfig {
        &self.config
    }

    /// Basecalls a raw-signal prefix and judges every shard by its anchor
    /// count. Deterministic in the prefix bytes, so any chunking that buffers
    /// the same `decision_samples` prefix resolves to the same judgement.
    pub fn evaluate(&self, raw: &[u16]) -> PrefilterOutcome {
        let m = metrics();
        m.prefilter_evals.add(1);
        let picoamps = self.config.adc.to_picoamps_all(raw);
        let called = self.basecaller.basecall(&picoamps);
        if called.len() < self.config.min_basecall_bases {
            m.prefilter_fail_open.add(1);
            return PrefilterOutcome {
                keep: vec![true; self.indices.len()],
                anchor_counts: vec![0; self.indices.len()],
                fail_open: true,
            };
        }
        // The indices are forward-strand only; judge the better orientation,
        // as the mapper does.
        let reverse = called.reverse_complement();
        let anchor_counts: Vec<usize> = self
            .indices
            .iter()
            .map(|index| {
                index
                    .anchors(&called)
                    .len()
                    .max(index.anchors(&reverse).len())
            })
            .collect();
        let keep: Vec<bool> = anchor_counts
            .iter()
            .map(|&count| count >= self.config.min_anchors)
            .collect();
        if keep.iter().all(|&k| !k) {
            m.prefilter_fail_open.add(1);
            return PrefilterOutcome {
                keep: vec![true; self.indices.len()],
                anchor_counts,
                fail_open: true,
            };
        }
        m.prefilter_pruned
            .add(keep.iter().filter(|&&k| !k).count() as u64);
        PrefilterOutcome {
            keep,
            anchor_counts,
            fail_open: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_genome::random::random_genome;

    /// The ideal 10-samples-per-base squiggle for a fragment.
    fn noiseless_squiggle(model: &KmerModel, fragment: &Sequence) -> Vec<u16> {
        model
            .expected_raw_squiggle(fragment, 10, &AdcModel::default())
            .samples()
            .to_vec()
    }

    #[test]
    fn target_shard_survives_and_unrelated_shards_prune() {
        let model = KmerModel::synthetic_r94(0);
        let genomes: Vec<Sequence> = (0..4).map(|i| random_genome(40 + i, 20_000)).collect();
        let prefilter =
            MinimizerPrefilter::new(model.clone(), genomes.iter(), PrefilterConfig::default());
        let raw = noiseless_squiggle(&model, &genomes[2].subsequence(5_000, 6_000));
        let outcome = prefilter.evaluate(&raw[..2_000.min(raw.len())]);
        assert!(!outcome.fail_open);
        assert!(outcome.keep[2], "true target must survive");
        assert!(outcome.pruned() >= 1, "unrelated shards should prune");
        assert!(outcome.anchor_counts[2] > outcome.anchor_counts[0]);
    }

    #[test]
    fn junk_signal_fails_open() {
        let model = KmerModel::synthetic_r94(0);
        let genomes: Vec<Sequence> = (0..3).map(|i| random_genome(50 + i, 10_000)).collect();
        let prefilter = MinimizerPrefilter::new(model, genomes.iter(), PrefilterConfig::default());
        // A flat line basecalls to (almost) nothing: keep everything.
        let outcome = prefilter.evaluate(&[500u16; 2_000]);
        assert!(outcome.fail_open);
        assert!(outcome.keep.iter().all(|&k| k));
        assert_eq!(outcome.pruned(), 0);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let model = KmerModel::synthetic_r94(0);
        let genomes: Vec<Sequence> = (0..3).map(|i| random_genome(60 + i, 15_000)).collect();
        let prefilter =
            MinimizerPrefilter::new(model.clone(), genomes.iter(), PrefilterConfig::default());
        let raw = noiseless_squiggle(&model, &genomes[1].subsequence(2_000, 2_600));
        assert_eq!(prefilter.evaluate(&raw), prefilter.evaluate(&raw));
    }
}
