//! Classification metrics for the SquiggleFilter experiments.
//!
//! The accuracy experiments of the paper (Figures 11, 17a, 18, 19) are all
//! built from the same ingredients: a set of scored, labelled reads, a
//! threshold sweep producing TPR/FPR curves, F-scores, and cost histograms.
//! This crate provides those ingredients without depending on any of the
//! classifiers.
//!
//! # Example
//!
//! ```
//! use sf_metrics::{roc_curve, ScoredSample};
//!
//! let samples = vec![
//!     ScoredSample { score: 5.0, is_target: true },
//!     ScoredSample { score: 50.0, is_target: false },
//! ];
//! assert_eq!(roc_curve(&samples).auc(), 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod confusion;
pub mod histogram;
pub mod roc;

pub use confusion::ConfusionMatrix;
pub use histogram::{summary, Histogram, Summary};
pub use roc::{roc_curve, RocCurve, RocPoint, ScoredSample};
