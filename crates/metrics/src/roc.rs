//! ROC-style threshold sweeps over scored, labelled reads.
//!
//! SquiggleFilter accepts reads whose alignment cost is **below** a
//! threshold, so in this module *lower scores indicate the positive class*.

use crate::confusion::ConfusionMatrix;

/// A scored observation: the classifier's score and the ground-truth label.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScoredSample {
    /// Classifier score (e.g. sDTW alignment cost). Lower = more likely
    /// target.
    pub score: f64,
    /// Ground truth: is this a target read?
    pub is_target: bool,
}

/// One point of the ROC curve.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RocPoint {
    /// The threshold: samples with `score <= threshold` are predicted
    /// positive.
    pub threshold: f64,
    /// Confusion matrix at this threshold.
    pub matrix: ConfusionMatrix,
}

impl RocPoint {
    /// True-positive rate at this point.
    pub fn tpr(&self) -> f64 {
        self.matrix.true_positive_rate()
    }

    /// False-positive rate at this point.
    pub fn fpr(&self) -> f64 {
        self.matrix.false_positive_rate()
    }
}

/// A full ROC curve.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct RocCurve {
    /// Points in increasing threshold order (i.e. increasing FPR).
    pub points: Vec<RocPoint>,
}

impl RocCurve {
    /// Area under the ROC curve, computed with the trapezoid rule.
    /// 1.0 = perfect separation, 0.5 = chance.
    pub fn auc(&self) -> f64 {
        if self.points.len() < 2 {
            return 0.0;
        }
        let mut area = 0.0;
        for pair in self.points.windows(2) {
            let dx = pair[1].fpr() - pair[0].fpr();
            area += dx * (pair[0].tpr() + pair[1].tpr()) / 2.0;
        }
        area
    }

    /// The point with the maximum F1 score.
    pub fn best_f1(&self) -> Option<&RocPoint> {
        self.points.iter().max_by(|a, b| {
            a.matrix
                .f1()
                .partial_cmp(&b.matrix.f1())
                // sf-lint: allow(panic) -- F1 of finite rates is finite
                .expect("finite f1")
        })
    }

    /// The maximum F1 score over the curve (0 for an empty curve).
    pub fn max_f1(&self) -> f64 {
        self.best_f1().map(|p| p.matrix.f1()).unwrap_or(0.0)
    }

    /// The point with the lowest FPR among those reaching at least `min_tpr`.
    pub fn point_for_tpr(&self, min_tpr: f64) -> Option<&RocPoint> {
        self.points.iter().find(|p| p.tpr() >= min_tpr)
    }
}

/// Builds the ROC curve for a set of scored samples by sweeping the threshold
/// over every distinct score (plus the two extremes).
///
/// # Examples
///
/// ```
/// use sf_metrics::{roc_curve, ScoredSample};
///
/// let samples = vec![
///     ScoredSample { score: 1.0, is_target: true },
///     ScoredSample { score: 2.0, is_target: true },
///     ScoredSample { score: 10.0, is_target: false },
/// ];
/// let curve = roc_curve(&samples);
/// assert_eq!(curve.auc(), 1.0);
/// assert_eq!(curve.max_f1(), 1.0);
/// ```
pub fn roc_curve(samples: &[ScoredSample]) -> RocCurve {
    if samples.is_empty() {
        return RocCurve::default();
    }
    let mut thresholds: Vec<f64> = samples.iter().map(|s| s.score).collect();
    // sf-lint: allow(panic) -- classifier scores are finite alignment costs
    thresholds.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
    thresholds.dedup();
    let lowest = thresholds.first().copied().unwrap_or(0.0) - 1.0;
    let mut all = Vec::with_capacity(thresholds.len() + 1);
    all.push(lowest);
    all.extend(thresholds);

    let points = all
        .into_iter()
        .map(|threshold| {
            let matrix = ConfusionMatrix::from_pairs(
                samples.iter().map(|s| (s.is_target, s.score <= threshold)),
            );
            RocPoint { threshold, matrix }
        })
        .collect();
    RocCurve { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> Vec<ScoredSample> {
        let mut samples = Vec::new();
        for i in 0..50 {
            samples.push(ScoredSample {
                score: i as f64,
                is_target: true,
            });
            samples.push(ScoredSample {
                score: 100.0 + i as f64,
                is_target: false,
            });
        }
        samples
    }

    fn overlapping() -> Vec<ScoredSample> {
        let mut samples = Vec::new();
        for i in 0..50 {
            samples.push(ScoredSample {
                score: i as f64,
                is_target: true,
            });
            samples.push(ScoredSample {
                score: 25.0 + i as f64,
                is_target: false,
            });
        }
        samples
    }

    #[test]
    fn perfect_separation_has_auc_one() {
        let curve = roc_curve(&separable());
        assert!((curve.auc() - 1.0).abs() < 1e-12);
        assert_eq!(curve.max_f1(), 1.0);
    }

    #[test]
    fn overlap_reduces_auc_and_f1() {
        let curve = roc_curve(&overlapping());
        assert!(curve.auc() < 1.0);
        assert!(curve.auc() > 0.5);
        assert!(curve.max_f1() < 1.0);
        assert!(curve.max_f1() > 0.6);
    }

    #[test]
    fn curve_endpoints_cover_zero_and_one() {
        let curve = roc_curve(&overlapping());
        let first = curve.points.first().unwrap();
        let last = curve.points.last().unwrap();
        assert_eq!(first.tpr(), 0.0);
        assert_eq!(first.fpr(), 0.0);
        assert_eq!(last.tpr(), 1.0);
        assert_eq!(last.fpr(), 1.0);
    }

    #[test]
    fn tpr_and_fpr_are_monotone() {
        let curve = roc_curve(&overlapping());
        for pair in curve.points.windows(2) {
            assert!(pair[1].tpr() >= pair[0].tpr());
            assert!(pair[1].fpr() >= pair[0].fpr());
        }
    }

    #[test]
    fn point_for_tpr() {
        let curve = roc_curve(&overlapping());
        let point = curve.point_for_tpr(0.9).unwrap();
        assert!(point.tpr() >= 0.9);
        // And it is the cheapest such point: the previous point is below 0.9.
        let idx = curve
            .points
            .iter()
            .position(|p| p.threshold == point.threshold)
            .unwrap();
        if idx > 0 {
            assert!(curve.points[idx - 1].tpr() < 0.9);
        }
    }

    #[test]
    fn empty_input_is_empty_curve() {
        let curve = roc_curve(&[]);
        assert!(curve.points.is_empty());
        assert_eq!(curve.auc(), 0.0);
        assert_eq!(curve.max_f1(), 0.0);
        assert!(curve.best_f1().is_none());
    }

    #[test]
    fn inverted_scores_give_auc_below_half() {
        // If targets score *higher* than background the curve is below chance.
        let samples: Vec<ScoredSample> = (0..20)
            .map(|i| ScoredSample {
                score: i as f64,
                is_target: i >= 10,
            })
            .collect();
        assert!(roc_curve(&samples).auc() < 0.5);
    }
}
