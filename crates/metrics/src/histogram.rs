//! Histograms and summary statistics for cost distributions (Figure 11).

/// Summary statistics of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 5th percentile.
    pub p5: f64,
    /// 95th percentile.
    pub p95: f64,
}

/// Computes summary statistics (zeroed for an empty slice).
pub fn summary(values: &[f64]) -> Summary {
    if values.is_empty() {
        return Summary::default();
    }
    let mut sorted: Vec<f64> = values.to_vec();
    // sf-lint: allow(panic) -- callers feed measured (finite) latencies and costs
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len();
    let mean = sorted.iter().sum::<f64>() / n as f64;
    let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    let percentile = |p: f64| -> f64 {
        let idx = ((n - 1) as f64 * p).round() as usize;
        sorted[idx]
    };
    Summary {
        count: n,
        mean,
        std_dev: var.sqrt(),
        min: sorted[0],
        max: sorted[n - 1],
        median: percentile(0.5),
        p5: percentile(0.05),
        p95: percentile(0.95),
    }
}

/// A fixed-width histogram over a numeric range.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Histogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[min, max)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `max <= min`.
    pub fn new(min: f64, max: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(max > min, "histogram range must be non-empty");
        Histogram {
            min,
            max,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds a value.
    pub fn add(&mut self, value: f64) {
        if value < self.min {
            self.underflow += 1;
        } else if value >= self.max {
            self.overflow += 1;
        } else {
            let bins = self.counts.len();
            let bin = ((value - self.min) / (self.max - self.min) * bins as f64) as usize;
            self.counts[bin.min(bins - 1)] += 1;
        }
    }

    /// Adds every value from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for value in values {
            self.add(value);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of values below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Number of values at or above the range maximum.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of values added, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The `(low, high)` edges of bin `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn bin_edges(&self, index: usize) -> (f64, f64) {
        assert!(index < self.counts.len(), "bin index out of range");
        let width = (self.max - self.min) / self.counts.len() as f64;
        (
            self.min + width * index as f64,
            self.min + width * (index + 1) as f64,
        )
    }

    /// Renders the histogram as rows of `low..high count` text (used by the
    /// figure-generator binaries).
    pub fn rows(&self) -> Vec<(f64, f64, u64)> {
        (0..self.counts.len())
            .map(|i| {
                let (low, high) = self.bin_edges(i);
                (low, high, self.counts[i])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = summary(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std_dev - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_default() {
        assert_eq!(summary(&[]), Summary::default());
    }

    #[test]
    fn percentiles_order() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let s = summary(&values);
        assert!(s.p5 < s.median && s.median < s.p95);
        assert!((s.p5 - 50.0).abs() <= 1.0);
        assert!((s.p95 - 949.0).abs() <= 1.5);
    }

    #[test]
    fn histogram_bins_and_ranges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend([0.0, 1.9, 2.0, 5.5, 9.99, 10.0, -1.0]);
        assert_eq!(h.counts(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin_edges(0), (0.0, 2.0));
        assert_eq!(h.bin_edges(4), (8.0, 10.0));
        assert_eq!(h.rows().len(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_panics() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }
}
