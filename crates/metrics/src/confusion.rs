//! Binary confusion matrices.

/// Counts of classification outcomes for a binary classifier where
/// "positive" means "classified as target / kept".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct ConfusionMatrix {
    /// Target reads correctly kept.
    pub true_positives: u64,
    /// Background reads incorrectly kept.
    pub false_positives: u64,
    /// Background reads correctly ejected.
    pub true_negatives: u64,
    /// Target reads incorrectly ejected.
    pub false_negatives: u64,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        ConfusionMatrix::default()
    }

    /// Records one observation.
    pub fn record(&mut self, is_target: bool, predicted_target: bool) {
        match (is_target, predicted_target) {
            (true, true) => self.true_positives += 1,
            (true, false) => self.false_negatives += 1,
            (false, true) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
        }
    }

    /// Builds a matrix from an iterator of `(is_target, predicted_target)`
    /// pairs.
    pub fn from_pairs<I: IntoIterator<Item = (bool, bool)>>(pairs: I) -> Self {
        let mut matrix = ConfusionMatrix::new();
        for (is_target, predicted) in pairs {
            matrix.record(is_target, predicted);
        }
        matrix
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// True-positive rate (recall / sensitivity); 0 when undefined.
    pub fn true_positive_rate(&self) -> f64 {
        ratio(
            self.true_positives,
            self.true_positives + self.false_negatives,
        )
    }

    /// False-positive rate; 0 when undefined.
    pub fn false_positive_rate(&self) -> f64 {
        ratio(
            self.false_positives,
            self.false_positives + self.true_negatives,
        )
    }

    /// True-negative rate (specificity); 0 when undefined.
    pub fn true_negative_rate(&self) -> f64 {
        ratio(
            self.true_negatives,
            self.true_negatives + self.false_positives,
        )
    }

    /// Precision (positive predictive value); 0 when undefined.
    pub fn precision(&self) -> f64 {
        ratio(
            self.true_positives,
            self.true_positives + self.false_positives,
        )
    }

    /// Recall — alias of [`ConfusionMatrix::true_positive_rate`].
    pub fn recall(&self) -> f64 {
        self.true_positive_rate()
    }

    /// Overall accuracy; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        ratio(self.true_positives + self.true_negatives, self.total())
    }

    /// F1 score (harmonic mean of precision and recall); 0 when undefined.
    pub fn f1(&self) -> f64 {
        self.f_beta(1.0)
    }

    /// F-beta score; 0 when undefined.
    pub fn f_beta(&self, beta: f64) -> f64 {
        let p = self.precision();
        let r = self.recall();
        let b2 = beta * beta;
        if p + r == 0.0 {
            return 0.0;
        }
        (1.0 + b2) * p * r / (b2 * p + r)
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.true_negatives += other.true_negatives;
        self.false_negatives += other.false_negatives;
    }
}

fn ratio(numerator: u64, denominator: u64) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        numerator as f64 / denominator as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> ConfusionMatrix {
        ConfusionMatrix {
            true_positives: 80,
            false_negatives: 20,
            false_positives: 10,
            true_negatives: 90,
        }
    }

    #[test]
    fn rates() {
        let m = example();
        assert_eq!(m.total(), 200);
        assert!((m.true_positive_rate() - 0.8).abs() < 1e-12);
        assert!((m.false_positive_rate() - 0.1).abs() < 1e-12);
        assert!((m.true_negative_rate() - 0.9).abs() < 1e-12);
        assert!((m.precision() - 80.0 / 90.0).abs() < 1e-12);
        assert!((m.accuracy() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn f_scores() {
        let m = example();
        let p = 80.0 / 90.0;
        let r = 0.8;
        let expected_f1 = 2.0 * p * r / (p + r);
        assert!((m.f1() - expected_f1).abs() < 1e-12);
        // F2 weights recall higher; since recall < precision here, F2 < F1.
        assert!(m.f_beta(2.0) < m.f1());
    }

    #[test]
    fn record_and_from_pairs_agree() {
        let pairs = vec![
            (true, true),
            (true, false),
            (false, true),
            (false, false),
            (true, true),
        ];
        let from_pairs = ConfusionMatrix::from_pairs(pairs.clone());
        let mut recorded = ConfusionMatrix::new();
        for (t, p) in pairs {
            recorded.record(t, p);
        }
        assert_eq!(from_pairs, recorded);
        assert_eq!(from_pairs.true_positives, 2);
        assert_eq!(from_pairs.false_negatives, 1);
        assert_eq!(from_pairs.false_positives, 1);
        assert_eq!(from_pairs.true_negatives, 1);
    }

    #[test]
    fn empty_matrix_is_all_zero() {
        let m = ConfusionMatrix::new();
        assert_eq!(m.total(), 0);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.f1(), 0.0);
        assert_eq!(m.true_positive_rate(), 0.0);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = example();
        let b = example();
        a.merge(&b);
        assert_eq!(a.total(), 400);
        assert_eq!(a.true_positives, 160);
    }
}
