//! Cycle-level and analytical models of the SquiggleFilter accelerator
//! (paper §5 and §7.1–7.2).
//!
//! The accelerator is a set of independent tiles, each containing ping-pong
//! query buffers, a streaming mean–MAD normalizer, a 100 KB reference buffer
//! and a 1-D systolic array of 2000 processing elements clocked at 2.5 GHz.
//! This crate models it at two levels:
//!
//! * **functional / cycle-level** — [`ProcessingElement`], [`SystolicArray`],
//!   [`HardwareNormalizer`] and [`Tile`] execute the same computation as the
//!   RTL would, cycle by cycle, and are verified bit-exactly against the
//!   software kernel in `sf-sdtw`;
//! * **analytical** — [`AsicModel`] reproduces the Table 4 area/power
//!   roll-up and [`AcceleratorModel`] the latency/throughput numbers of
//!   §7.1, Figure 16 and Figure 21.
//!
//! # Example
//!
//! ```
//! use sf_hw::AcceleratorModel;
//!
//! let perf = AcceleratorModel::default().sars_cov_2_design_point();
//! assert!(perf.latency_ms < 0.05);
//! assert!(perf.minion_headroom() > 100.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asic;
pub mod normalizer_hw;
pub mod pe;
pub mod perf;
pub mod systolic;
pub mod tile;

pub use asic::{AsicModel, ElementBudget};
pub use normalizer_hw::HardwareNormalizer;
pub use pe::{PeOutput, ProcessingElement};
pub use perf::{
    AcceleratorModel, AcceleratorPerf, MINION_MAX_BASES_PER_S, MINION_MAX_SAMPLES_PER_S,
};
pub use systolic::{SystolicArray, SystolicRun};
pub use tile::{Tile, TileClassification, TileConfig, PES_PER_TILE};
