//! ASIC area and power roll-up (paper Table 4).
//!
//! The paper synthesizes SquiggleFilter for a 28 nm TSMC HPC process at
//! 2.5 GHz and reports per-element area and power. We cannot run the
//! synthesis flow, so this module encodes those per-element results and
//! reproduces the roll-up arithmetic for 1-tile and 5-tile configurations
//! (plus arbitrary tile counts for scalability studies).

use crate::normalizer_hw::{NORMALIZER_AREA_MM2, NORMALIZER_POWER_W};
use crate::pe::{PE_AREA_MM2, PE_POWER_W};
use crate::tile::PES_PER_TILE;

/// Area and power of one design element.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ElementBudget {
    /// Silicon area in mm².
    pub area_mm2: f64,
    /// Power in watts.
    pub power_w: f64,
}

/// Per-element synthesis results (Table 4, 28 nm TSMC HPC @ 2.5 GHz).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AsicModel {
    /// The streaming normalizer.
    pub normalizer: ElementBudget,
    /// One processing element.
    pub processing_element: ElementBudget,
    /// One ping-pong query buffer (2000 × 10-bit samples).
    pub query_buffer: ElementBudget,
    /// One reference buffer (100 KB).
    pub reference_buffer: ElementBudget,
    /// Synthesized total of one tile (the 2000-PE array plus its control
    /// and interconnect), as reported in Table 4. The tile total is *not*
    /// exactly 2000 × the standalone PE numbers because synthesis optimizes
    /// the array as a whole.
    pub tile_total: ElementBudget,
    /// Number of PEs per tile.
    pub pes_per_tile: usize,
}

impl Default for AsicModel {
    fn default() -> Self {
        AsicModel {
            normalizer: ElementBudget {
                area_mm2: NORMALIZER_AREA_MM2,
                power_w: NORMALIZER_POWER_W,
            },
            processing_element: ElementBudget {
                area_mm2: PE_AREA_MM2,
                power_w: PE_POWER_W,
            },
            query_buffer: ElementBudget {
                area_mm2: 0.023,
                power_w: 0.009,
            },
            reference_buffer: ElementBudget {
                area_mm2: 0.185,
                power_w: 0.028,
            },
            tile_total: ElementBudget {
                area_mm2: 2.423,
                power_w: 2.780,
            },
            pes_per_tile: PES_PER_TILE,
        }
    }
}

impl AsicModel {
    /// Area and power of one tile's PE array (the Table 4 "Tile" row).
    pub fn tile(&self) -> ElementBudget {
        self.tile_total
    }

    /// Naive 2000 × standalone-PE roll-up (slightly larger than the tile
    /// total because synthesis optimizes the array as a whole).
    pub fn pe_array_upper_bound(&self) -> ElementBudget {
        ElementBudget {
            area_mm2: self.processing_element.area_mm2 * self.pes_per_tile as f64,
            power_w: self.processing_element.power_w * self.pes_per_tile as f64,
        }
    }

    /// Area and power of one complete tile instance as placed in the ASIC:
    /// the PE array plus its two ping-pong query buffers, reference buffer
    /// and normalizer.
    pub fn tile_instance(&self) -> ElementBudget {
        ElementBudget {
            area_mm2: self.tile_total.area_mm2
                + 2.0 * self.query_buffer.area_mm2
                + self.reference_buffer.area_mm2
                + self.normalizer.area_mm2,
            power_w: self.tile_total.power_w
                + 2.0 * self.query_buffer.power_w
                + self.reference_buffer.power_w
                + self.normalizer.power_w,
        }
    }

    /// Area and power of a complete ASIC with `tiles` tiles (the paper's
    /// design has 5).
    pub fn asic(&self, tiles: usize) -> ElementBudget {
        let tile = self.tile_instance();
        ElementBudget {
            area_mm2: tiles as f64 * tile.area_mm2,
            power_w: tiles as f64 * tile.power_w,
        }
    }

    /// Fraction of tile area occupied by the reference buffer (the paper
    /// reports 6.98 %, justifying per-tile duplication of the reference).
    pub fn reference_buffer_area_fraction(&self) -> f64 {
        self.reference_buffer.area_mm2 / self.tile_instance().area_mm2
    }

    /// Renders the Table 4 rows: `(element, area mm², power W)`.
    pub fn table4_rows(&self) -> Vec<(&'static str, f64, f64)> {
        let tile = self.tile();
        let one = self.asic(1);
        let five = self.asic(5);
        vec![
            (
                "Normalizer",
                self.normalizer.area_mm2,
                self.normalizer.power_w,
            ),
            (
                "Processing Element",
                self.processing_element.area_mm2,
                self.processing_element.power_w,
            ),
            ("Tile (1x2000 PEs)", tile.area_mm2, tile.power_w),
            (
                "Query buffer",
                self.query_buffer.area_mm2,
                self.query_buffer.power_w,
            ),
            (
                "Reference buffer",
                self.reference_buffer.area_mm2,
                self.reference_buffer.power_w,
            ),
            ("Complete 1-Tile ASIC", one.area_mm2, one.power_w),
            ("Complete 5-Tile ASIC", five.area_mm2, five.power_w),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_matches_table4() {
        let model = AsicModel::default();
        let tile = model.tile();
        assert!(
            (tile.area_mm2 - 2.423).abs() < 0.01,
            "tile area {}",
            tile.area_mm2
        );
        assert!(
            (tile.power_w - 2.780).abs() < 0.01,
            "tile power {}",
            tile.power_w
        );
        // The naive 2000 × PE roll-up is close to, but above, the tile total.
        let upper = model.pe_array_upper_bound();
        assert!(upper.area_mm2 >= tile.area_mm2 * 0.95);
    }

    #[test]
    fn one_tile_asic_matches_table4() {
        let model = AsicModel::default();
        let asic = model.asic(1);
        assert!(
            (asic.area_mm2 - 2.65).abs() < 0.05,
            "1-tile area {}",
            asic.area_mm2
        );
        assert!(
            (asic.power_w - 2.86).abs() < 0.05,
            "1-tile power {}",
            asic.power_w
        );
    }

    #[test]
    fn five_tile_asic_matches_table4() {
        let model = AsicModel::default();
        let asic = model.asic(5);
        assert!(
            (asic.area_mm2 - 13.25).abs() < 0.2,
            "5-tile area {}",
            asic.area_mm2
        );
        assert!(
            (asic.power_w - 14.31).abs() < 0.2,
            "5-tile power {}",
            asic.power_w
        );
    }

    #[test]
    fn reference_buffer_is_small_fraction_of_tile() {
        let model = AsicModel::default();
        let fraction = model.reference_buffer_area_fraction();
        assert!((0.05..0.09).contains(&fraction), "fraction {fraction}");
    }

    #[test]
    fn area_and_power_scale_linearly_with_tiles() {
        let model = AsicModel::default();
        let one = model.asic(1);
        let three = model.asic(3);
        assert!((three.area_mm2 - 3.0 * one.area_mm2).abs() < 1e-9);
        assert!((three.power_w - 3.0 * one.power_w).abs() < 1e-9);
        let zero = model.asic(0);
        assert_eq!(zero.area_mm2, 0.0);
    }

    #[test]
    fn table4_rows_are_complete() {
        let rows = AsicModel::default().table4_rows();
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].0, "Normalizer");
        assert_eq!(rows[6].0, "Complete 5-Tile ASIC");
        assert!(rows.iter().all(|(_, a, p)| *a > 0.0 && *p > 0.0));
    }
}
