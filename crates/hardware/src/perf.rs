//! Accelerator-level performance model (paper §7.1, §7.2 and Figure 16).
//!
//! Combines the tile latency/throughput model with sequencer output rates to
//! answer the questions the paper's evaluation asks: can the filter keep up
//! with a MinION (and with future, faster flow cells), and what is the
//! decision latency compared to GPU basecalling?

use crate::asic::{AsicModel, ElementBudget};
use crate::tile::{Tile, TileConfig};

/// Maximum MinION output in signal samples per second (paper: 2.05 M
/// samples/s across all 512 channels).
pub const MINION_MAX_SAMPLES_PER_S: f64 = 2.05e6;
/// Maximum MinION output in bases per second (512 pores × 450 b/s).
pub const MINION_MAX_BASES_PER_S: f64 = 230_400.0;
/// GridION output relative to MinION.
pub const GRIDION_RELATIVE_THROUGHPUT: f64 = 5.0;

/// Summary of the accelerator's performance for a given target reference.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AcceleratorPerf {
    /// Number of tiles powered on.
    pub tiles: usize,
    /// Reference length in samples (forward + reverse strands).
    pub reference_samples: usize,
    /// Read-prefix length in samples.
    pub prefix_samples: usize,
    /// Per-read classification latency in milliseconds.
    pub latency_ms: f64,
    /// Single-tile classification throughput in samples per second.
    pub tile_throughput_samples_per_s: f64,
    /// Aggregate classification throughput across all tiles.
    pub total_throughput_samples_per_s: f64,
    /// Area and power of the ASIC at this tile count.
    pub budget: ElementBudget,
}

impl AcceleratorPerf {
    /// How many times the current MinION output the accelerator can absorb.
    pub fn minion_headroom(&self) -> f64 {
        self.total_throughput_samples_per_s / MINION_MAX_SAMPLES_PER_S
    }
}

/// Performance model for the full SquiggleFilter accelerator.
#[derive(Debug, Clone, Default)]
pub struct AcceleratorModel {
    tile_config: TileConfig,
    asic: AsicModel,
}

impl AcceleratorModel {
    /// Creates a model with explicit tile configuration and synthesis
    /// numbers.
    pub fn new(tile_config: TileConfig, asic: AsicModel) -> Self {
        AcceleratorModel { tile_config, asic }
    }

    /// The tile configuration used for timing.
    pub fn tile_config(&self) -> &TileConfig {
        &self.tile_config
    }

    /// The synthesis model used for area/power.
    pub fn asic_model(&self) -> &AsicModel {
        &self.asic
    }

    /// Evaluates latency, throughput, area and power for a reference of
    /// `reference_samples` samples classified on `tiles` tiles with
    /// `prefix_samples`-sample prefixes.
    pub fn evaluate(
        &self,
        reference_samples: usize,
        prefix_samples: usize,
        tiles: usize,
    ) -> AcceleratorPerf {
        let cycles = (prefix_samples + reference_samples) as f64;
        let latency_s = cycles / self.tile_config.clock_hz;
        let tile_throughput = prefix_samples as f64 * self.tile_config.clock_hz / cycles;
        AcceleratorPerf {
            tiles,
            reference_samples,
            prefix_samples,
            latency_ms: latency_s * 1e3,
            tile_throughput_samples_per_s: tile_throughput,
            total_throughput_samples_per_s: tile_throughput * tiles as f64,
            budget: self.asic.asic(tiles),
        }
    }

    /// Convenience: the paper's 5-tile design point for SARS-CoV-2
    /// (~60 k reference samples, 2000-sample prefixes).
    pub fn sars_cov_2_design_point(&self) -> AcceleratorPerf {
        self.evaluate(59_796, 2_000, 5)
    }

    /// Convenience: the lambda-phage design point (~97 k reference samples).
    pub fn lambda_design_point(&self) -> AcceleratorPerf {
        self.evaluate(96_994, 2_000, 5)
    }

    /// The largest sequencer-throughput multiple (relative to today's
    /// MinION) that the accelerator can still filter in real time.
    pub fn max_supported_throughput_multiple(
        &self,
        reference_samples: usize,
        prefix_samples: usize,
        tiles: usize,
    ) -> f64 {
        self.evaluate(reference_samples, prefix_samples, tiles)
            .minion_headroom()
    }

    /// Builds a [`Tile`] consistent with this model for functional
    /// simulation.
    pub fn build_tile(&self, reference: Vec<i8>) -> Tile {
        Tile::new(self.tile_config, reference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sars_cov_2_design_point_matches_section_7_1() {
        let perf = AcceleratorModel::default().sars_cov_2_design_point();
        // Paper: 0.027 ms latency, 74.63 M samples/s per tile.
        assert!(
            (perf.latency_ms - 0.0247).abs() < 0.005,
            "latency {}",
            perf.latency_ms
        );
        assert!(
            (60.0e6..95.0e6).contains(&perf.tile_throughput_samples_per_s),
            "tile throughput {}",
            perf.tile_throughput_samples_per_s
        );
        // 5 tiles: paper reports 233.65 M samples/s aggregate... same order.
        assert!(perf.total_throughput_samples_per_s > 200.0e6);
        assert!((perf.budget.area_mm2 - 13.25).abs() < 1.5);
    }

    #[test]
    fn lambda_design_point_matches_section_7_1() {
        let perf = AcceleratorModel::default().lambda_design_point();
        // Paper: 0.043 ms latency, 46.73 M samples/s per tile.
        assert!(
            (perf.latency_ms - 0.0396).abs() < 0.006,
            "latency {}",
            perf.latency_ms
        );
        assert!(
            (40.0e6..60.0e6).contains(&perf.tile_throughput_samples_per_s),
            "tile throughput {}",
            perf.tile_throughput_samples_per_s
        );
    }

    #[test]
    fn headroom_supports_future_sequencers() {
        // Paper: the 5-tile design tolerates a ~114× increase in MinION
        // throughput (headline number quoted for the lambda-sized reference,
        // the longer of the two evaluated genomes).
        let model = AcceleratorModel::default();
        let headroom = model.max_supported_throughput_multiple(96_994, 2_000, 5);
        assert!((100.0..140.0).contains(&headroom), "headroom {headroom}");
        // A single tile still exceeds today's MinION by a wide margin.
        let single = model.evaluate(96_994, 2_000, 1);
        assert!(single.minion_headroom() > 20.0);
    }

    #[test]
    fn throughput_scales_with_tiles_latency_does_not() {
        let model = AcceleratorModel::default();
        let one = model.evaluate(60_000, 2_000, 1);
        let five = model.evaluate(60_000, 2_000, 5);
        assert_eq!(one.latency_ms, five.latency_ms);
        assert!(
            (five.total_throughput_samples_per_s / one.total_throughput_samples_per_s - 5.0).abs()
                < 1e-9
        );
        assert!(five.budget.power_w > one.budget.power_w);
    }

    #[test]
    fn longer_prefixes_increase_latency_and_throughput() {
        let model = AcceleratorModel::default();
        let short = model.evaluate(60_000, 1_000, 1);
        let long = model.evaluate(60_000, 4_000, 1);
        assert!(long.latency_ms > short.latency_ms);
        // Longer prefixes amortize the reference scan better.
        assert!(long.tile_throughput_samples_per_s > short.tile_throughput_samples_per_s);
    }

    #[test]
    fn minion_constants_are_consistent() {
        // 512 pores at 450 bases/s ≈ 230 kb/s; at ~9 samples/base that is
        // ≈ 2 M samples/s.
        let samples_per_base = MINION_MAX_SAMPLES_PER_S / MINION_MAX_BASES_PER_S;
        assert!((8.0..10.0).contains(&samples_per_base));
        const { assert!(GRIDION_RELATIVE_THROUGHPUT > 1.0) }
    }
}
