//! Hardware normalizer model (paper §5.3, Figure 15).
//!
//! The normalizer is a streaming pre-processor in front of each tile: it
//! accumulates 10-bit raw samples, updates the mean and Mean Absolute
//! Deviation every 2000 samples, and then emits mean–MAD-normalized samples
//! clipped to `[-4, 4]` and quantized to signed 8-bit fixed point. All
//! arithmetic is integer/fixed-point — there is no floating-point unit in the
//! datapath.

use sf_squiggle::normalize::FIXED_POINT_RANGE;

/// Area of the synthesized normalizer in mm² (Table 4).
pub const NORMALIZER_AREA_MM2: f64 = 0.014;
/// Power of the normalizer in watts (Table 4).
pub const NORMALIZER_POWER_W: f64 = 0.045;

/// Fixed-point scale used internally (Q16.16-style).
const FP_SHIFT: u32 = 16;

/// Streaming integer mean/MAD normalizer.
///
/// # Examples
///
/// ```
/// use sf_hw::HardwareNormalizer;
///
/// let raw: Vec<u16> = (0..2000).map(|i| 480 + ((i * 7) % 60) as u16).collect();
/// let mut normalizer = HardwareNormalizer::new(2000);
/// let out = normalizer.normalize(&raw);
/// assert_eq!(out.len(), raw.len());
/// assert!(out.iter().any(|&x| x != 0));
/// ```
#[derive(Debug, Clone)]
pub struct HardwareNormalizer {
    window: usize,
}

impl HardwareNormalizer {
    /// Creates a normalizer that estimates statistics over the first
    /// `window` samples (2000 in the synthesized design).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "calibration window must be positive");
        HardwareNormalizer { window }
    }

    /// The calibration window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Estimates the integer mean and MAD (both in Q16.16 fixed point) over
    /// the calibration window.
    pub fn estimate(&self, samples: &[u16]) -> (i64, i64) {
        let window = &samples[..samples.len().min(self.window)];
        if window.is_empty() {
            return (0, 1 << FP_SHIFT);
        }
        let n = window.len() as i64;
        let sum: i64 = window.iter().map(|&x| x as i64).sum();
        // mean in Q16.16
        let mean_fp = (sum << FP_SHIFT) / n;
        let mad_sum: i64 = window
            .iter()
            .map(|&x| ((x as i64) << FP_SHIFT).abs_diff(mean_fp) as i64)
            .sum();
        let mad_fp = (mad_sum / n).max(1);
        (mean_fp, mad_fp)
    }

    /// Normalizes and quantizes a raw sample stream to signed 8-bit fixed
    /// point in `[-127, 127]` (representing `[-4, 4]`).
    pub fn normalize(&self, samples: &[u16]) -> Vec<i8> {
        let (mean_fp, mad_fp) = self.estimate(samples);
        samples
            .iter()
            .map(|&x| {
                let x_fp = (x as i64) << FP_SHIFT;
                // z = (x - mean) / mad, computed as a Q16.16 ratio.
                let num = x_fp - mean_fp;
                let z_fp = (num << FP_SHIFT) / mad_fp;
                // Scale [-4, 4] onto [-127, 127]: multiply by 127/4.
                let scaled = (z_fp * 127 / (FIXED_POINT_RANGE as i64)) >> FP_SHIFT;
                scaled.clamp(-127, 127) as i8
            })
            .collect()
    }

    /// Number of cycles the normalizer needs to process `n` samples: one
    /// accumulation pass plus one transform pass (it is fully pipelined with
    /// the query buffer load, so this never limits tile throughput).
    pub fn cycles(&self, n: usize) -> u64 {
        (n as u64) * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_squiggle::normalize::{Normalizer, NormalizerConfig};

    fn synthetic_raw(len: usize) -> Vec<u16> {
        (0..len).map(|i| 450 + ((i * 31) % 140) as u16).collect()
    }

    #[test]
    fn matches_software_normalizer_within_quantization_error() {
        let raw = synthetic_raw(4000);
        let hw = HardwareNormalizer::new(2000).normalize(&raw);
        let sw = Normalizer::new(NormalizerConfig::default()).normalize_raw_quantized(&raw);
        assert_eq!(hw.len(), sw.len());
        let max_diff = hw
            .iter()
            .zip(&sw)
            .map(|(a, b)| (*a as i32 - *b as i32).abs())
            .max()
            .unwrap();
        // Fixed-point rounding may differ by a couple of codes at most.
        assert!(max_diff <= 2, "max difference {max_diff}");
    }

    #[test]
    fn output_is_centred_and_clipped() {
        let mut raw = synthetic_raw(2000);
        raw[100] = 0;
        raw[200] = 1023;
        let out = HardwareNormalizer::new(2000).normalize(&raw);
        assert!(out.iter().all(|&x| (-127..=127).contains(&(x as i32))));
        let mean: f64 = out.iter().map(|&x| x as f64).sum::<f64>() / out.len() as f64;
        assert!(mean.abs() < 6.0, "mean {mean}");
    }

    #[test]
    fn constant_signal_maps_to_zero() {
        let raw = vec![512u16; 3000];
        let out = HardwareNormalizer::new(2000).normalize(&raw);
        assert!(out.iter().all(|&x| x == 0));
    }

    #[test]
    fn empty_input_is_empty() {
        let out = HardwareNormalizer::new(2000).normalize(&[]);
        assert!(out.is_empty());
    }

    #[test]
    fn window_limits_estimation() {
        // Statistics come from the first window only.
        let mut raw = vec![400u16; 1000];
        raw.extend(vec![800u16; 1000]);
        let normalizer = HardwareNormalizer::new(1000);
        let (mean_fp, _) = normalizer.estimate(&raw);
        assert_eq!(mean_fp >> 16, 400);
    }

    #[test]
    fn cycles_and_constants() {
        let normalizer = HardwareNormalizer::new(2000);
        assert_eq!(normalizer.cycles(2000), 4000);
        assert_eq!(normalizer.window(), 2000);
        assert!((NORMALIZER_AREA_MM2 - 0.014).abs() < 1e-9);
        assert!((NORMALIZER_POWER_W - 0.045).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "calibration window")]
    fn zero_window_panics() {
        let _ = HardwareNormalizer::new(0);
    }
}
