//! Cycle-level model of the 1-D systolic array (paper §5.1, Figure 13).
//!
//! The array holds one normalized query sample per PE (2000 PEs in the
//! synthesized design). Reference samples are streamed in one per cycle; the
//! wavefront computes anti-diagonals of the sDTW matrix, and the final PE
//! produces the alignment cost of the full query prefix ending at each
//! reference position. A running minimum over those outputs (compared against
//! the programmable threshold) is the Read Until decision.
//!
//! The model is verified cell-for-cell against the software integer kernel
//! ([`sf_sdtw::IntSdtw`]).

use crate::pe::{PeOutput, ProcessingElement};
use sf_sdtw::config::SdtwConfig;
use sf_sdtw::SdtwResult;

/// Result of running one read through the systolic array.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SystolicRun {
    /// Best (minimum) alignment cost observed at the final PE.
    pub best: SdtwResult,
    /// Total cycles from the first reference sample entering the array to the
    /// last output leaving it (`query_len + reference_len - 1`).
    pub cycles: u64,
    /// The final PE's output cost for every reference position (the row the
    /// accelerator can spill to DRAM for multi-stage filtering).
    pub last_row: Vec<i32>,
    /// Number of PEs that held query samples.
    pub active_pes: usize,
}

/// Cycle-level systolic-array simulator.
///
/// # Examples
///
/// ```
/// use sf_hw::SystolicArray;
/// use sf_sdtw::SdtwConfig;
///
/// let reference: Vec<i8> = (0..200).map(|i| ((i * 13) % 251) as i8).collect();
/// let query: Vec<i8> = reference[40..60].to_vec();
/// let array = SystolicArray::new(SdtwConfig::hardware_without_bonus(), 64);
/// let run = array.classify(&query, &reference);
/// assert_eq!(run.best.cost, 0.0);
/// assert_eq!(run.cycles, (query.len() + reference.len() - 1) as u64);
/// ```
#[derive(Debug, Clone)]
pub struct SystolicArray {
    config: SdtwConfig,
    num_pes: usize,
}

impl SystolicArray {
    /// Creates an array model with `num_pes` processing elements (the paper's
    /// tile has 2000).
    ///
    /// # Panics
    ///
    /// Panics if `num_pes` is zero.
    pub fn new(config: SdtwConfig, num_pes: usize) -> Self {
        assert!(num_pes > 0, "the array needs at least one PE");
        SystolicArray { config, num_pes }
    }

    /// The kernel configuration programmed into the PEs.
    pub fn config(&self) -> &SdtwConfig {
        &self.config
    }

    /// Number of PEs in the array.
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// Runs one classification: the query (at most `num_pes` samples — longer
    /// queries are truncated, mirroring the fixed 2000-sample prefix) against
    /// the streamed reference.
    ///
    /// # Panics
    ///
    /// Panics if the query or the reference is empty.
    pub fn classify(&self, query: &[i8], reference: &[i8]) -> SystolicRun {
        assert!(!query.is_empty(), "query must not be empty");
        assert!(!reference.is_empty(), "reference must not be empty");
        let query = &query[..query.len().min(self.num_pes)];
        let n = query.len();
        let m = reference.len();

        let mut pes: Vec<ProcessingElement> = query
            .iter()
            .enumerate()
            .map(|(i, &q)| ProcessingElement::new(i, q, self.config))
            .collect();

        let total_cycles = n + m - 1;
        let mut last_row = vec![i32::MAX; m];
        let mut best_cost = i32::MAX;
        let mut best_end = 0usize;
        let mut best_start = 0usize;

        // Outputs produced by each PE in the *current* cycle, consumed by the
        // next PE in the same loop iteration (it models the registered
        // neighbour link: PE i+1 sees PE i's output of this cycle only on the
        // following cycle, which `ProcessingElement::tick` implements via its
        // internal delay line).
        let mut outputs: Vec<PeOutput> = vec![PeOutput::invalid(); n];
        for cycle in 0..total_cycles {
            let mut prev_output: Option<PeOutput> = None;
            for (i, pe) in pes.iter_mut().enumerate() {
                // PE i works on reference index j = cycle - i while in range.
                let reference_sample = cycle
                    .checked_sub(i)
                    .filter(|&j| j < m)
                    .map(|j| (j, reference[j]));
                let out = pe.tick(reference_sample, prev_output);
                prev_output = Some(out);
                outputs[i] = out;
            }
            // The final PE's output this cycle is the cost of aligning the
            // whole query prefix ending at reference position j.
            let last = outputs[n - 1];
            if last.valid {
                let j = cycle - (n - 1);
                last_row[j] = last.cost;
                if last.cost < best_cost || (last.cost == best_cost && j > best_end) {
                    best_cost = last.cost;
                    best_end = j;
                    best_start = last.start;
                }
            }
        }

        SystolicRun {
            best: SdtwResult {
                cost: best_cost as f64,
                start_position: best_start,
                end_position: best_end,
                query_samples: n,
            },
            cycles: total_cycles as u64,
            last_row,
            active_pes: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_sdtw::IntSdtw;

    fn pseudo_random_reference(len: usize, seed: u32) -> Vec<i8> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                ((x >> 24) as i32 - 128) as i8
            })
            .collect()
    }

    #[test]
    fn matches_software_kernel_exactly() {
        // Cell-for-cell equivalence with the integer software kernel, for
        // every hardware-relevant configuration.
        let reference = pseudo_random_reference(500, 7);
        let query: Vec<i8> = reference[123..203]
            .iter()
            .flat_map(|&x| std::iter::repeat_n(x, 2))
            .collect();
        for config in [
            SdtwConfig::hardware(),
            SdtwConfig::hardware_without_bonus(),
            SdtwConfig::vanilla(),
        ] {
            let array = SystolicArray::new(config, query.len());
            let run = array.classify(&query, &reference);
            let software = IntSdtw::new(config, reference.clone());
            let mut stream = software.stream();
            stream.extend(&query);
            assert_eq!(run.last_row, stream.row(), "row mismatch for {config:?}");
            let expected = stream.best().unwrap();
            assert_eq!(run.best.cost, expected.cost, "cost mismatch for {config:?}");
            assert_eq!(run.best.query_samples, expected.query_samples);
        }
    }

    #[test]
    fn exact_match_costs_zero_and_counts_cycles() {
        let reference = pseudo_random_reference(300, 3);
        let query: Vec<i8> = reference[100..150].to_vec();
        let array = SystolicArray::new(SdtwConfig::hardware_without_bonus(), 2_000);
        let run = array.classify(&query, &reference);
        assert_eq!(run.best.cost, 0.0);
        assert_eq!(run.best.end_position, 149);
        assert_eq!(run.best.start_position, 100);
        assert_eq!(run.cycles, 50 + 300 - 1);
        assert_eq!(run.active_pes, 50);
    }

    #[test]
    fn longer_query_is_truncated_to_pe_count() {
        let reference = pseudo_random_reference(200, 5);
        let query = pseudo_random_reference(96, 9);
        let array = SystolicArray::new(SdtwConfig::hardware(), 64);
        let run = array.classify(&query, &reference);
        assert_eq!(run.active_pes, 64);
        assert_eq!(run.best.query_samples, 64);
        assert_eq!(run.cycles, (64 + 200 - 1) as u64);
    }

    #[test]
    fn last_row_is_fully_populated() {
        let reference = pseudo_random_reference(150, 11);
        let query = pseudo_random_reference(20, 13);
        let array = SystolicArray::new(SdtwConfig::hardware(), 2_000);
        let run = array.classify(&query, &reference);
        assert_eq!(run.last_row.len(), 150);
        assert!(run.last_row.iter().all(|&c| c != i32::MAX));
    }

    #[test]
    #[should_panic(expected = "query must not be empty")]
    fn empty_query_panics() {
        let array = SystolicArray::new(SdtwConfig::hardware(), 10);
        let _ = array.classify(&[], &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn zero_pes_panics() {
        let _ = SystolicArray::new(SdtwConfig::hardware(), 0);
    }
}
