//! The SquiggleFilter processing element (paper §5.2, Figure 14).
//!
//! Each PE owns one (normalized, quantized) query sample and computes one
//! cell of the sDTW matrix per cycle as the reference streams past it. The
//! datapath is: take the minimum of the previous neighbour's outputs from one
//! and two cycles ago (optionally reduced by the match bonus), add the
//! absolute difference between the held query sample and the incoming
//! reference sample, and register the result for the next PE.

use sf_sdtw::config::SdtwConfig;

/// Area of one synthesized PE in mm² (paper: 1203 µm² at 28 nm).
pub const PE_AREA_MM2: f64 = 0.001203;
/// Power of one PE in watts (paper: 1.92 mW).
pub const PE_POWER_W: f64 = 0.00192;

/// The value a PE forwards to its right-hand neighbour each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PeOutput {
    /// Accumulated alignment cost of the cell computed this cycle.
    pub cost: i32,
    /// Number of query samples aligned to the current reference base on the
    /// best path ending at this cell (feeds the match bonus).
    pub dwell: u32,
    /// Reference index of the start of the best alignment ending at this
    /// cell (not present in the RTL, carried here for software-equivalence
    /// checks).
    pub start: usize,
    /// Whether this output corresponds to a real matrix cell (the wavefront
    /// has reached this PE) or is padding.
    pub valid: bool,
}

impl PeOutput {
    /// An invalid/padding output.
    pub fn invalid() -> Self {
        PeOutput {
            cost: i32::MAX,
            dwell: 0,
            start: 0,
            valid: false,
        }
    }
}

/// One processing element of the systolic array.
#[derive(Debug, Clone)]
pub struct ProcessingElement {
    /// The query sample held by this PE.
    query: i8,
    /// Neighbour output from one cycle ago (cell `(i-1, j)` when computing
    /// `(i, j)`).
    prev1: PeOutput,
    /// Neighbour output from two cycles ago (cell `(i-1, j-1)`).
    prev2: PeOutput,
    /// This PE's own output from the previous cycle (cell `(i, j-1)`),
    /// needed only when reference deletions are enabled.
    own_prev: PeOutput,
    config: SdtwConfig,
    /// Index of this PE in the array (0 = first query sample).
    index: usize,
}

impl ProcessingElement {
    /// Creates a PE holding `query` at position `index` in the array.
    pub fn new(index: usize, query: i8, config: SdtwConfig) -> Self {
        ProcessingElement {
            query,
            prev1: PeOutput::invalid(),
            prev2: PeOutput::invalid(),
            own_prev: PeOutput::invalid(),
            config,
            index,
        }
    }

    /// The query sample held by this PE.
    pub fn query(&self) -> i8 {
        self.query
    }

    /// Executes one cycle.
    ///
    /// * `reference` — the reference sample reaching this PE this cycle, with
    ///   its index, or `None` if the wavefront has not arrived / has passed.
    /// * `neighbour` — the output produced by PE `index - 1` *this* cycle
    ///   (it becomes this PE's `prev1` next cycle). For PE 0 pass `None`.
    ///
    /// Returns the output computed this cycle.
    pub fn tick(
        &mut self,
        reference: Option<(usize, i8)>,
        neighbour: Option<PeOutput>,
    ) -> PeOutput {
        let output = match reference {
            None => PeOutput::invalid(),
            Some((j, r)) => {
                let d = self.config.distance.eval_i8(self.query, r);
                if self.index == 0 {
                    // First query sample: subsequence DTW allows the alignment
                    // to start at any reference position.
                    PeOutput {
                        cost: d,
                        dwell: 1,
                        start: j,
                        valid: true,
                    }
                } else {
                    // Vertical predecessor: (i-1, j) — neighbour's output last
                    // cycle.
                    let mut dwell = self.prev1.dwell.saturating_add(1);
                    let mut start = self.prev1.start;
                    let mut cost = if self.prev1.valid {
                        self.prev1.cost
                    } else {
                        i32::MAX
                    };
                    // Diagonal predecessor: (i-1, j-1) — neighbour's output two
                    // cycles ago, with the match bonus.
                    if self.prev2.valid {
                        let mut diag = self.prev2.cost;
                        if let Some(bonus) = self.config.match_bonus {
                            diag -= bonus.bonus_for_dwell(self.prev2.dwell) as i32;
                        }
                        if diag < cost {
                            cost = diag;
                            dwell = 1;
                            start = self.prev2.start;
                        }
                    }
                    // Horizontal predecessor: (i, j-1) — this PE's own output
                    // last cycle (reference deletion; removed in hardware).
                    if self.config.allow_reference_deletion
                        && self.own_prev.valid
                        && self.own_prev.cost < cost
                    {
                        cost = self.own_prev.cost;
                        dwell = 1;
                        start = self.own_prev.start;
                    }
                    if cost == i32::MAX {
                        // No valid predecessor: this cell is unreachable
                        // (cannot happen once the wavefront is established).
                        PeOutput::invalid()
                    } else {
                        PeOutput {
                            cost: cost.saturating_add(d),
                            dwell,
                            start,
                            valid: true,
                        }
                    }
                }
            }
        };
        // Shift the delay line.
        self.prev2 = self.prev1;
        self.prev1 = neighbour.unwrap_or_else(PeOutput::invalid);
        self.own_prev = output;
        output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_sdtw::SdtwConfig;

    #[test]
    fn first_pe_computes_free_start_costs() {
        let mut pe = ProcessingElement::new(0, 10, SdtwConfig::hardware_without_bonus());
        let out = pe.tick(Some((0, 14)), None);
        assert!(out.valid);
        assert_eq!(out.cost, 4);
        assert_eq!(out.start, 0);
        let out = pe.tick(Some((1, -10)), None);
        assert_eq!(out.cost, 20);
        assert_eq!(out.start, 1);
    }

    #[test]
    fn idle_pe_outputs_invalid() {
        let mut pe = ProcessingElement::new(3, 0, SdtwConfig::hardware());
        let out = pe.tick(None, None);
        assert!(!out.valid);
        assert!(!PeOutput::invalid().valid);
    }

    #[test]
    fn second_pe_uses_vertical_and_diagonal_predecessors() {
        let config = SdtwConfig::hardware_without_bonus();
        let mut pe = ProcessingElement::new(1, 5, config);
        // Cycle 0: neighbour produced (0, 0) with cost 7; we are idle.
        pe.tick(
            None,
            Some(PeOutput {
                cost: 7,
                dwell: 1,
                start: 0,
                valid: true,
            }),
        );
        // Cycle 1: neighbour produced (0, 1) with cost 2; we compute (1, 0):
        // only vertical predecessor (0,0) = 7 is valid.
        let out = pe.tick(
            Some((0, 5)),
            Some(PeOutput {
                cost: 2,
                dwell: 1,
                start: 1,
                valid: true,
            }),
        );
        assert_eq!(out.cost, 7); // |5-5| + 7
        assert_eq!(out.dwell, 2);
        // Cycle 2: compute (1, 1): vertical = (0,1) = 2, diagonal = (0,0) = 7.
        let out = pe.tick(Some((1, 6)), None);
        assert_eq!(out.cost, 2 + 1);
        assert_eq!(out.dwell, 2);
        assert_eq!(out.start, 1);
    }

    #[test]
    fn match_bonus_is_subtracted_on_diagonal_moves() {
        let config = SdtwConfig::hardware();
        let mut pe = ProcessingElement::new(1, 0, config);
        pe.tick(
            None,
            Some(PeOutput {
                cost: 100,
                dwell: 7,
                start: 0,
                valid: true,
            }),
        );
        // Diagonal predecessor has dwell 7 → bonus 70; vertical is expensive.
        pe.tick(
            Some((0, 0)),
            Some(PeOutput {
                cost: 1_000,
                dwell: 1,
                start: 1,
                valid: true,
            }),
        );
        let out = pe.tick(Some((1, 0)), None);
        // diag = 100 - 70 = 30 beats vertical 1000.
        assert_eq!(out.cost, 30);
        assert_eq!(out.dwell, 1);
    }

    #[test]
    fn area_and_power_match_paper_table4() {
        assert!((PE_AREA_MM2 - 0.0012).abs() < 0.0002);
        assert!((PE_POWER_W - 0.00192).abs() < 1e-5);
    }
}
