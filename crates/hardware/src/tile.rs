//! A SquiggleFilter tile: query buffers, normalizer, reference buffer and a
//! 2000-PE systolic array (paper §5.1, Figure 13).

use crate::normalizer_hw::HardwareNormalizer;
use crate::systolic::{SystolicArray, SystolicRun};
use sf_sdtw::config::SdtwConfig;
use sf_sdtw::FilterVerdict;

/// Number of PEs per tile in the synthesized design.
pub const PES_PER_TILE: usize = 2_000;
/// Size of each tile's reference buffer in bytes (one byte per reference
/// sample).
pub const REFERENCE_BUFFER_BYTES: usize = 100 * 1024;
/// Size of each ping-pong query buffer in samples (10-bit samples).
pub const QUERY_BUFFER_SAMPLES: usize = 2_000;

/// Configuration of one tile.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TileConfig {
    /// sDTW kernel configuration programmed into the PEs.
    pub sdtw: SdtwConfig,
    /// Number of PEs (2000 in the paper's design).
    pub num_pes: usize,
    /// Clock frequency in Hz (2.5 GHz in the paper).
    pub clock_hz: f64,
    /// Classification threshold compared against the final PE's cost.
    pub threshold: i32,
}

impl Default for TileConfig {
    fn default() -> Self {
        TileConfig {
            sdtw: SdtwConfig::hardware(),
            num_pes: PES_PER_TILE,
            clock_hz: 2.5e9,
            threshold: i32::MAX,
        }
    }
}

/// Outcome of classifying one read on a tile.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TileClassification {
    /// Keep or eject.
    pub verdict: FilterVerdict,
    /// The systolic-array run (costs, cycles).
    pub run: SystolicRun,
    /// End-to-end latency in seconds at the configured clock.
    pub latency_s: f64,
}

/// One accelerator tile.
///
/// # Examples
///
/// ```
/// use sf_hw::{Tile, TileConfig};
///
/// let reference: Vec<i8> = (0..10_000).map(|i| ((i * 37) % 251) as i8).collect();
/// let tile = Tile::new(TileConfig::default(), reference);
/// let raw: Vec<u16> = (0..2_000).map(|i| 470 + ((i * 13) % 80) as u16).collect();
/// let result = tile.classify_raw(&raw);
/// assert!(result.latency_s < 0.001);
/// ```
#[derive(Debug, Clone)]
pub struct Tile {
    config: TileConfig,
    array: SystolicArray,
    normalizer: HardwareNormalizer,
    reference: Vec<i8>,
}

impl Tile {
    /// Creates a tile with the given quantized reference squiggle loaded into
    /// its reference buffer.
    ///
    /// # Panics
    ///
    /// Panics if the reference is empty or exceeds the reference buffer.
    pub fn new(config: TileConfig, reference: Vec<i8>) -> Self {
        assert!(!reference.is_empty(), "reference must not be empty");
        assert!(
            reference.len() <= REFERENCE_BUFFER_BYTES,
            "reference ({} samples) exceeds the {}-byte reference buffer",
            reference.len(),
            REFERENCE_BUFFER_BYTES
        );
        Tile {
            array: SystolicArray::new(config.sdtw, config.num_pes),
            normalizer: HardwareNormalizer::new(QUERY_BUFFER_SAMPLES),
            config,
            reference,
        }
    }

    /// The tile configuration.
    pub fn config(&self) -> &TileConfig {
        &self.config
    }

    /// Number of reference samples loaded.
    pub fn reference_len(&self) -> usize {
        self.reference.len()
    }

    /// Cycles needed to classify a read prefix of `query_samples` samples:
    /// the prefix must be streamed through the array followed by the whole
    /// reference (paper: "read prefix length plus the reference genome
    /// length").
    pub fn classification_cycles(&self, query_samples: usize) -> u64 {
        (query_samples + self.reference.len()) as u64
    }

    /// Classification latency in seconds for a `query_samples`-sample prefix.
    pub fn classification_latency_s(&self, query_samples: usize) -> f64 {
        self.classification_cycles(query_samples) as f64 / self.config.clock_hz
    }

    /// Sustained classification throughput in query samples per second:
    /// every `classification_cycles` the tile retires one `query_samples`
    /// prefix.
    pub fn throughput_samples_per_s(&self, query_samples: usize) -> f64 {
        query_samples as f64 * self.config.clock_hz
            / self.classification_cycles(query_samples) as f64
    }

    /// Classifies a raw (10-bit ADC) read prefix: normalize on the tile's
    /// normalizer, run the systolic array, compare against the threshold.
    pub fn classify_raw(&self, raw: &[u16]) -> TileClassification {
        let query = self.normalizer.normalize(raw);
        self.classify_quantized(&query)
    }

    /// Classifies an already-normalized, quantized query.
    pub fn classify_quantized(&self, query: &[i8]) -> TileClassification {
        let run = self.array.classify(query, &self.reference);
        let verdict = if run.best.cost <= self.config.threshold as f64 {
            FilterVerdict::Accept
        } else {
            FilterVerdict::Reject
        };
        let latency_s = self.classification_latency_s(run.active_pes);
        TileClassification {
            verdict,
            run,
            latency_s,
        }
    }

    /// DRAM bandwidth needed when the tile is configured for multi-stage
    /// filtering and spills the final PE's cost every cycle (bytes/second).
    /// Each spilled entry is a 4-byte cost.
    pub fn multistage_dram_bandwidth_bytes_per_s(&self) -> f64 {
        4.0 * self.config.clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_reference(len: usize) -> Vec<i8> {
        let mut x: u32 = 5;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                ((x >> 24) as i32 - 128) as i8
            })
            .collect()
    }

    #[test]
    fn latency_matches_paper_for_sars_cov_2() {
        // SARS-CoV-2: ~60,000 reference samples, 2000-sample prefix, 2.5 GHz:
        // (2000 + 60000) / 2.5e9 = 0.0248 ms ≈ the paper's 0.027 ms.
        let tile = Tile::new(TileConfig::default(), small_reference(60_000));
        let latency_ms = tile.classification_latency_s(2_000) * 1e3;
        assert!(
            (0.02..0.03).contains(&latency_ms),
            "latency {latency_ms} ms"
        );
        // Throughput ≈ 80 M samples/s, same order as the paper's 74.63 M.
        let throughput = tile.throughput_samples_per_s(2_000);
        assert!(
            (60.0e6..100.0e6).contains(&throughput),
            "throughput {throughput}"
        );
    }

    #[test]
    fn lambda_is_slower_than_covid() {
        let covid = Tile::new(TileConfig::default(), small_reference(60_000));
        let lambda = Tile::new(TileConfig::default(), small_reference(97_000));
        assert!(lambda.classification_latency_s(2_000) > covid.classification_latency_s(2_000));
        assert!(lambda.throughput_samples_per_s(2_000) < covid.throughput_samples_per_s(2_000));
        // Lambda latency ≈ 0.04 ms (paper: 0.043 ms).
        let ms = lambda.classification_latency_s(2_000) * 1e3;
        assert!((0.035..0.05).contains(&ms), "lambda latency {ms} ms");
    }

    #[test]
    fn classify_separates_matching_and_random_reads() {
        let reference = small_reference(3_000);
        // A query that is an exact slice of the reference (already quantized).
        let matching: Vec<i8> = reference[500..900].to_vec();
        let random: Vec<i8> = small_reference(400)
            .iter()
            .map(|&x| x.wrapping_add(63))
            .collect();
        let tile = Tile::new(TileConfig::default(), reference);
        let cost_match = tile.classify_quantized(&matching).run.best.cost;
        let cost_random = tile.classify_quantized(&random).run.best.cost;
        assert!(cost_match < cost_random, "{cost_match} vs {cost_random}");
    }

    #[test]
    fn threshold_controls_verdict() {
        let reference = small_reference(2_000);
        let query: Vec<i8> = reference[100..300].to_vec();
        let mut config = TileConfig::default();
        let permissive = Tile::new(config, reference.clone());
        let cost = permissive.classify_quantized(&query).run.best.cost;
        config.threshold = (cost - 1.0) as i32;
        let strict = Tile::new(config, reference);
        assert_eq!(
            strict.classify_quantized(&query).verdict,
            FilterVerdict::Reject
        );
    }

    #[test]
    fn raw_classification_normalizes_first() {
        let reference = small_reference(2_000);
        let tile = Tile::new(TileConfig::default(), reference);
        let raw: Vec<u16> = (0..500).map(|i| 460 + ((i * 17) % 90) as u16).collect();
        let result = tile.classify_raw(&raw);
        assert_eq!(result.run.active_pes, 500);
        assert!(result.latency_s > 0.0);
    }

    #[test]
    fn dram_bandwidth_matches_paper() {
        // Paper: multi-stage spilling consumes ~10 GB/s per tile.
        let tile = Tile::new(TileConfig::default(), small_reference(1_000));
        let gb_per_s = tile.multistage_dram_bandwidth_bytes_per_s() / 1e9;
        assert!((gb_per_s - 10.0).abs() < 0.1, "bandwidth {gb_per_s} GB/s");
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_reference_panics() {
        let _ = Tile::new(TileConfig::default(), small_reference(200_000));
    }
}
